"""A page-level write-ahead log with statement-scoped commit records.

Replication maintenance is exactly the kind of multi-page mutation the
paper's update-cost analysis is about: one in-place update touches up to
*f* referencing objects plus link pages (Section 4.1), and a separate-path
update must keep ``S'`` in lockstep with ``S`` (Section 5.2).  The WAL
makes each DML statement -- *including every propagation it triggers* --
an atomic unit:

* when a statement first touches a page, the pre-statement image is
  captured (at fetch time, before the client can mutate the frame) and
  written as a ``PAGE_BEFORE`` record the moment the page is dirtied;
* pages the statement allocates are logged as ``ALLOC`` records;
* at commit, the statement's final image of every page it dirtied is
  written as ``PAGE_AFTER`` records followed by a ``COMMIT`` record;
* the buffer pool calls :meth:`WriteAheadLog.before_data_write` before
  any dirty page reaches the disk, enforcing the WAL rule: *log records
  describing a change are durable before the changed page is*.

Recovery (see :mod:`repro.recovery.manager`) redoes committed statements
from their after-images and rolls the (at most one, single-writer) trailing
incomplete statement back from its before-images -- so torn or half-flushed
pages are always overwritten by a full known-good image.

The log itself lives on a dedicated durable device: appends never touch
the simulated data disk, never count against the paper's I/O figures, and
survive injected data-disk faults -- mirroring a real log on its own
spindle/NVRAM.  Its I/O is accounted separately (``wal_records_total``,
``wal_flushes_total``, ``wal_bytes_total``).

Record wire format (also used when a snapshot carries a WAL tail)::

    frame  := length:u32 crc32:u32 body
    body   := type:u8 stmt_id:u64 payload
    BEGIN  := note_len:u16 note(utf-8)
    PAGE_* := file_id:u32 page_no:u32 image[PAGE_SIZE]
    ALLOC  := file_id:u32 page_no:u32
    COMMIT := (empty)
"""

from __future__ import annotations

import struct
import time
import zlib
from dataclasses import dataclass, field
from enum import IntEnum

from repro.errors import WalError
from repro.storage.constants import PAGE_SIZE
from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.waitevents import WAL_FLUSH

__all__ = ["WAL_MAGIC", "WalError", "WalRecord", "WalRecordType",
           "WriteAheadLog"]

_PageKey = tuple[int, int]

_FRAME = struct.Struct(">II")
_BODY_HEAD = struct.Struct(">BQ")
_NOTE_LEN = struct.Struct(">H")
_PAGE_HEAD = struct.Struct(">II")

WAL_MAGIC = b"FRWAL001"


class WalRecordType(IntEnum):
    BEGIN = 1
    PAGE_BEFORE = 2
    PAGE_AFTER = 3
    ALLOC = 4
    COMMIT = 5


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One log record; ``image`` is empty except for PAGE_* records."""

    type: WalRecordType
    stmt_id: int
    file_id: int = 0
    page_no: int = 0
    image: bytes = b""
    note: str = ""

    def encode(self) -> bytes:
        """Serialize to the framed wire format (length + crc + body)."""
        body = _BODY_HEAD.pack(self.type, self.stmt_id)
        if self.type is WalRecordType.BEGIN:
            raw = self.note.encode("utf-8")
            body += _NOTE_LEN.pack(len(raw)) + raw
        elif self.type in (WalRecordType.PAGE_BEFORE, WalRecordType.PAGE_AFTER):
            if len(self.image) != PAGE_SIZE:
                raise WalError(
                    f"page image must be {PAGE_SIZE} bytes, got {len(self.image)}")
            body += _PAGE_HEAD.pack(self.file_id, self.page_no) + self.image
        elif self.type is WalRecordType.ALLOC:
            body += _PAGE_HEAD.pack(self.file_id, self.page_no)
        return _FRAME.pack(len(body), zlib.crc32(body)) + body

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> tuple["WalRecord", int]:
        """Decode one framed record at ``offset``; returns (record, next).

        Raises :class:`WalError` -- and only :class:`WalError` -- on *any*
        malformed input: truncated frames, bad CRCs, unknown record types,
        short or oversized payloads, undecodable notes.  Records now also
        arrive off the replication wire, so a struct/Unicode exception
        escaping here would let one corrupted frame kill a follower's
        apply loop instead of tripping its reconnect path.
        """
        if offset < 0 or offset > len(data):
            raise WalError("WAL record offset out of range")
        if offset + _FRAME.size > len(data):
            raise WalError("truncated WAL record frame")
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        body = bytes(data[start:start + length])
        if len(body) != length:
            raise WalError("truncated WAL record body")
        if zlib.crc32(body) != crc:
            raise WalError("WAL record failed its CRC check")
        try:
            rtype = WalRecordType(body[0])
            (__, stmt_id) = _BODY_HEAD.unpack_from(body, 0)
        except (ValueError, struct.error, IndexError) as exc:
            raise WalError(f"malformed WAL record: {exc}") from None
        pos = _BODY_HEAD.size
        file_id = page_no = 0
        image = b""
        note = ""
        try:
            if rtype is WalRecordType.BEGIN:
                (note_len,) = _NOTE_LEN.unpack_from(body, pos)
                end = pos + _NOTE_LEN.size + note_len
                if end != len(body):
                    raise WalError(
                        f"BEGIN note length {note_len} disagrees with the "
                        f"record body ({len(body) - pos - _NOTE_LEN.size} "
                        f"byte(s) present)")
                note = body[pos + _NOTE_LEN.size:end].decode("utf-8")
            elif rtype in (WalRecordType.PAGE_BEFORE, WalRecordType.PAGE_AFTER):
                file_id, page_no = _PAGE_HEAD.unpack_from(body, pos)
                image = body[pos + _PAGE_HEAD.size:]
                if len(image) != PAGE_SIZE:
                    raise WalError("WAL page image has the wrong size")
            elif rtype is WalRecordType.ALLOC:
                file_id, page_no = _PAGE_HEAD.unpack_from(body, pos)
                if pos + _PAGE_HEAD.size != len(body):
                    raise WalError("ALLOC record carries trailing bytes")
            elif pos != len(body):
                raise WalError(
                    f"{rtype.name} record carries trailing bytes")
        except (struct.error, UnicodeDecodeError) as exc:
            raise WalError(f"malformed WAL record payload: {exc}") from None
        return cls(rtype, stmt_id, file_id, page_no, image, note), start + length


@dataclass
class StatementLog:
    """All records of one statement, grouped for replay."""

    stmt_id: int
    note: str = ""
    committed: bool = False
    befores: list[WalRecord] = field(default_factory=list)
    afters: list[WalRecord] = field(default_factory=list)
    allocs: list[WalRecord] = field(default_factory=list)


class WriteAheadLog:
    """The statement-scoped physical log of one database."""

    def __init__(self, metrics=None, telemetry=None) -> None:
        metrics = metrics if metrics is not None else NULL_METRICS
        #: optional Telemetry bundle: when its tracer is enabled, real log
        #: forces are recorded as ``wal_flush`` spans (the WAL is accounted
        #: on its own device, so the span carries no page I/O).
        self._telemetry = telemetry
        self._m_records = metrics.counter(
            "wal_records_total", "records appended to the write-ahead log")
        self._m_flushes = metrics.counter(
            "wal_flushes_total", "log forces (WAL-before-data and commits)")
        self._m_bytes = metrics.counter(
            "wal_bytes_total", "bytes appended to the write-ahead log")
        self.records: list[WalRecord] = []
        self._flushed = 0  # records known durable
        self._next_stmt_id = 1
        #: durable log-sequence number: committed statements since this
        #: log was created.  Monotonic across :meth:`checkpoint` (which
        #: truncates ``records`` but never rewinds the stream position),
        #: so replication consumers can address "the N-th committed
        #: statement" forever.
        self.commit_lsn = 0
        #: ``cb(lsn, note, records)`` called after each commit becomes
        #: durable, with the statement's full record tuple -- the tail
        #: stream replication ships to followers.  Listeners run inside
        #: the committing thread (under the engine latch on a served
        #: database), so entries are observed in commit order.
        self.commit_listeners: list = []
        # per-statement state (single-writer: at most one active statement)
        self._active: int | None = None
        self._stmt_start = 0
        self._snapshots: dict[_PageKey, bytes] = {}
        self._dirty: list[_PageKey] = []
        self._dirty_set: set[_PageKey] = set()
        self._allocated: set[_PageKey] = set()
        #: set when a statement died on a :class:`DiskFault`; the log keeps
        #: its incomplete tail and the database must ``recover()``.
        self.needs_recovery = False

    # -- statement lifecycle -------------------------------------------------

    @property
    def in_statement(self) -> bool:
        return self._active is not None

    def begin(self, note: str = "") -> int:
        """Open a statement; every page touched until commit belongs to it."""
        if self._active is not None:
            raise WalError("a WAL statement is already active")
        stmt_id = self._next_stmt_id
        self._next_stmt_id += 1
        self._active = stmt_id
        self._stmt_start = len(self.records)
        self._snapshots.clear()
        self._dirty.clear()
        self._dirty_set.clear()
        self._allocated.clear()
        self._append(WalRecord(WalRecordType.BEGIN, stmt_id, note=note))
        return stmt_id

    def commit(self, read_image) -> None:
        """Log after-images of every dirty page, then the commit record.

        ``read_image((file_id, page_no)) -> bytes`` must return the
        statement's final image of the page (buffer frame or disk).
        """
        stmt_id = self._require_active()
        if not self._dirty and self._flushed <= self._stmt_start:
            # read-only statement: leave no trace in the log
            del self.records[self._stmt_start:]
            self._end_statement()
            return
        for key in self._dirty:
            self._append(WalRecord(WalRecordType.PAGE_AFTER, stmt_id,
                                   key[0], key[1], bytes(read_image(key))))
        self._append(WalRecord(WalRecordType.COMMIT, stmt_id))
        self.flush()
        shipped = tuple(self.records[self._stmt_start:])
        mutated = any(r.type in (WalRecordType.PAGE_AFTER, WalRecordType.ALLOC)
                      for r in shipped)
        self._end_statement()
        if mutated:
            self.commit_lsn += 1
            note = shipped[0].note if shipped and \
                shipped[0].type is WalRecordType.BEGIN else ""
            for listener in list(self.commit_listeners):
                listener(self.commit_lsn, note, shipped)

    def abort(self) -> tuple[list[WalRecord], list[WalRecord]]:
        """Roll the active statement out of the log (live rollback).

        Returns ``(before_records, alloc_records)`` in log order so the
        caller can restore images (reversed) and truncate allocations; the
        statement's records are dropped from the tail.
        """
        self._require_active()
        tail = self.records[self._stmt_start:]
        befores = [r for r in tail if r.type is WalRecordType.PAGE_BEFORE]
        allocs = [r for r in tail if r.type is WalRecordType.ALLOC]
        del self.records[self._stmt_start:]
        self._flushed = min(self._flushed, len(self.records))
        self._end_statement()
        return befores, allocs

    def mark_crashed(self) -> None:
        """A disk fault killed the statement: keep the incomplete tail."""
        if self._active is not None:
            self._end_statement()
        self.needs_recovery = True

    def _end_statement(self) -> None:
        self._active = None
        self._snapshots.clear()
        self._dirty.clear()
        self._dirty_set.clear()
        self._allocated.clear()

    def _require_active(self) -> int:
        if self._active is None:
            raise WalError("no WAL statement is active")
        return self._active

    # -- buffer-pool hooks ---------------------------------------------------

    def observe_fetch(self, key: _PageKey, data) -> None:
        """Capture the pre-statement image of a page on first contact."""
        if self._active is None:
            return
        if key in self._snapshots or key in self._dirty_set:
            return
        self._snapshots[key] = bytes(data)

    def observe_dirty(self, key: _PageKey) -> None:
        """A fetched page was mutated: promote its snapshot to an undo record."""
        if self._active is None:
            return
        if key in self._dirty_set:
            return
        if key in self._allocated:
            self._dirty.append(key)
            self._dirty_set.add(key)
            return
        try:
            image = self._snapshots.pop(key)
        except KeyError:
            raise WalError(
                f"page {key} dirtied without a prior fetch in this statement"
            ) from None
        self._append(WalRecord(WalRecordType.PAGE_BEFORE, self._active,
                               key[0], key[1], image))
        self._dirty.append(key)
        self._dirty_set.add(key)

    def observe_alloc(self, file_id: int, page_no: int) -> None:
        """A page is about to be allocated for the active statement."""
        if self._active is None:
            return
        self._append(WalRecord(WalRecordType.ALLOC, self._active,
                               file_id, page_no))
        key = (file_id, page_no)
        self._allocated.add(key)
        self._dirty.append(key)
        self._dirty_set.add(key)

    def observe_drop_file(self, file_id: int) -> None:
        """A file was dropped mid-statement (e.g. a query's materialised
        temp file): forget everything the active statement knows about it,
        including already-appended undo/alloc records."""
        if self._active is None:
            return
        self._dirty = [k for k in self._dirty if k[0] != file_id]
        self._dirty_set = {k for k in self._dirty_set if k[0] != file_id}
        self._allocated = {k for k in self._allocated if k[0] != file_id}
        self._snapshots = {k: v for k, v in self._snapshots.items()
                           if k[0] != file_id}
        kept = [
            r for r in self.records[self._stmt_start:]
            if not (r.type in (WalRecordType.PAGE_BEFORE, WalRecordType.ALLOC)
                    and r.file_id == file_id)
        ]
        self.records[self._stmt_start:] = kept
        self._flushed = min(self._flushed, len(self.records))

    def before_data_write(self) -> None:
        """WAL ordering rule: force the log before a dirty page hits disk."""
        self.flush()

    def flush(self) -> None:
        """Make every appended record durable (accounted, instantaneous)."""
        if self._flushed < len(self.records):
            pending = len(self.records) - self._flushed
            tracer = (self._telemetry.tracer
                      if self._telemetry is not None else None)
            waits = (self._telemetry.waits
                     if self._telemetry is not None else None)
            started = (time.perf_counter()
                       if waits is not None and waits.enabled else None)
            if tracer is not None and tracer.enabled:
                with tracer.span("wal_flush", records=pending):
                    self._flushed = len(self.records)
            else:
                self._flushed = len(self.records)
            if started is not None:
                waits.record(WAL_FLUSH, time.perf_counter() - started)
            self._m_flushes.inc()

    # -- replay / persistence ------------------------------------------------

    def statements(self) -> list[StatementLog]:
        """Group the log into statements in append order."""
        out: list[StatementLog] = []
        by_id: dict[int, StatementLog] = {}
        for record in self.records:
            stmt = by_id.get(record.stmt_id)
            if stmt is None:
                stmt = StatementLog(record.stmt_id)
                by_id[record.stmt_id] = stmt
                out.append(stmt)
            if record.type is WalRecordType.BEGIN:
                stmt.note = record.note
            elif record.type is WalRecordType.PAGE_BEFORE:
                stmt.befores.append(record)
            elif record.type is WalRecordType.PAGE_AFTER:
                stmt.afters.append(record)
            elif record.type is WalRecordType.ALLOC:
                stmt.allocs.append(record)
            elif record.type is WalRecordType.COMMIT:
                stmt.committed = True
        return out

    def serialize(self) -> bytes:
        """The whole log as bytes (magic + framed records)."""
        return WAL_MAGIC + b"".join(r.encode() for r in self.records)

    def load(self, data: bytes) -> int:
        """Replace the log with a serialized image; returns record count."""
        if self._active is not None:
            raise WalError("cannot load a WAL while a statement is active")
        if data[:len(WAL_MAGIC)] != WAL_MAGIC:
            raise WalError("bad WAL magic")
        records: list[WalRecord] = []
        offset = len(WAL_MAGIC)
        while offset < len(data):
            record, offset = WalRecord.decode(data, offset)
            records.append(record)
        self.records = records
        self._flushed = len(records)
        if records:
            self._next_stmt_id = max(r.stmt_id for r in records) + 1
        return len(records)

    def checkpoint(self) -> None:
        """Truncate the log (caller guarantees the disk image is current)."""
        if self._active is not None:
            raise WalError("cannot checkpoint mid-statement")
        self.records.clear()
        self._flushed = 0

    @property
    def has_records(self) -> bool:
        return bool(self.records)

    # -- internals -----------------------------------------------------------

    def _append(self, record: WalRecord) -> None:
        self.records.append(record)
        self._m_records.inc(kind=record.type.name.lower())
        # size accounting without re-encoding full images on the hot path
        self._m_bytes.inc(
            _FRAME.size + _BODY_HEAD.size + len(record.image)
            + (len(record.note.encode("utf-8")) + _NOTE_LEN.size
               if record.type is WalRecordType.BEGIN else 0)
            + (_PAGE_HEAD.size
               if record.type in (WalRecordType.PAGE_BEFORE,
                                  WalRecordType.PAGE_AFTER,
                                  WalRecordType.ALLOC) else 0))
