"""A page-level write-ahead log with statement-scoped commit records.

Replication maintenance is exactly the kind of multi-page mutation the
paper's update-cost analysis is about: one in-place update touches up to
*f* referencing objects plus link pages (Section 4.1), and a separate-path
update must keep ``S'`` in lockstep with ``S`` (Section 5.2).  The WAL
makes each DML statement -- *including every propagation it triggers* --
an atomic unit:

* when a statement first touches a page, the pre-statement image is
  captured (at fetch time, before the client can mutate the frame) and
  written as a ``PAGE_BEFORE`` record the moment the page is dirtied;
* pages the statement allocates are logged as ``ALLOC`` records;
* at commit, the statement's final image of every page it dirtied is
  written as ``PAGE_AFTER`` records followed by a ``COMMIT`` record;
* the buffer pool calls :meth:`WriteAheadLog.before_data_write` before
  any dirty page reaches the disk, enforcing the WAL rule: *log records
  describing a change are durable before the changed page is*.

Recovery (see :mod:`repro.recovery.manager`) redoes committed statements
from their after-images and rolls the (at most one, single-writer) trailing
incomplete statement back from its before-images -- so torn or half-flushed
pages are always overwritten by a full known-good image.

The log itself lives on a dedicated durable device: appends never touch
the simulated data disk, never count against the paper's I/O figures, and
survive injected data-disk faults -- mirroring a real log on its own
spindle/NVRAM.  Its I/O is accounted separately (``wal_records_total``,
``wal_flushes_total``, ``wal_bytes_total``).

Record wire format (also used when a snapshot carries a WAL tail)::

    frame  := length:u32 crc32:u32 body
    body   := type:u8 stmt_id:u64 payload
    BEGIN  := note_len:u16 note(utf-8)
    PAGE_* := file_id:u32 page_no:u32 image[PAGE_SIZE]
    ALLOC  := file_id:u32 page_no:u32
    COMMIT := (empty)
"""

from __future__ import annotations

import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from enum import IntEnum

from repro.errors import WalError
from repro.storage.constants import PAGE_SIZE
from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.waitevents import WAL_FLUSH

__all__ = ["WAL_MAGIC", "WalError", "WalRecord", "WalRecordType",
           "WriteAheadLog"]

_PageKey = tuple[int, int]

_FRAME = struct.Struct(">II")
_BODY_HEAD = struct.Struct(">BQ")
_NOTE_LEN = struct.Struct(">H")
_PAGE_HEAD = struct.Struct(">II")

WAL_MAGIC = b"FRWAL001"


class WalRecordType(IntEnum):
    BEGIN = 1
    PAGE_BEFORE = 2
    PAGE_AFTER = 3
    ALLOC = 4
    COMMIT = 5


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One log record; ``image`` is empty except for PAGE_* records."""

    type: WalRecordType
    stmt_id: int
    file_id: int = 0
    page_no: int = 0
    image: bytes = b""
    note: str = ""

    def encode(self) -> bytes:
        """Serialize to the framed wire format (length + crc + body)."""
        body = _BODY_HEAD.pack(self.type, self.stmt_id)
        if self.type is WalRecordType.BEGIN:
            raw = self.note.encode("utf-8")
            body += _NOTE_LEN.pack(len(raw)) + raw
        elif self.type in (WalRecordType.PAGE_BEFORE, WalRecordType.PAGE_AFTER):
            if len(self.image) != PAGE_SIZE:
                raise WalError(
                    f"page image must be {PAGE_SIZE} bytes, got {len(self.image)}")
            body += _PAGE_HEAD.pack(self.file_id, self.page_no) + self.image
        elif self.type is WalRecordType.ALLOC:
            body += _PAGE_HEAD.pack(self.file_id, self.page_no)
        return _FRAME.pack(len(body), zlib.crc32(body)) + body

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> tuple["WalRecord", int]:
        """Decode one framed record at ``offset``; returns (record, next).

        Raises :class:`WalError` -- and only :class:`WalError` -- on *any*
        malformed input: truncated frames, bad CRCs, unknown record types,
        short or oversized payloads, undecodable notes.  Records now also
        arrive off the replication wire, so a struct/Unicode exception
        escaping here would let one corrupted frame kill a follower's
        apply loop instead of tripping its reconnect path.
        """
        if offset < 0 or offset > len(data):
            raise WalError("WAL record offset out of range")
        if offset + _FRAME.size > len(data):
            raise WalError("truncated WAL record frame")
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        body = bytes(data[start:start + length])
        if len(body) != length:
            raise WalError("truncated WAL record body")
        if zlib.crc32(body) != crc:
            raise WalError("WAL record failed its CRC check")
        try:
            rtype = WalRecordType(body[0])
            (__, stmt_id) = _BODY_HEAD.unpack_from(body, 0)
        except (ValueError, struct.error, IndexError) as exc:
            raise WalError(f"malformed WAL record: {exc}") from None
        pos = _BODY_HEAD.size
        file_id = page_no = 0
        image = b""
        note = ""
        try:
            if rtype is WalRecordType.BEGIN:
                (note_len,) = _NOTE_LEN.unpack_from(body, pos)
                end = pos + _NOTE_LEN.size + note_len
                if end != len(body):
                    raise WalError(
                        f"BEGIN note length {note_len} disagrees with the "
                        f"record body ({len(body) - pos - _NOTE_LEN.size} "
                        f"byte(s) present)")
                note = body[pos + _NOTE_LEN.size:end].decode("utf-8")
            elif rtype in (WalRecordType.PAGE_BEFORE, WalRecordType.PAGE_AFTER):
                file_id, page_no = _PAGE_HEAD.unpack_from(body, pos)
                image = body[pos + _PAGE_HEAD.size:]
                if len(image) != PAGE_SIZE:
                    raise WalError("WAL page image has the wrong size")
            elif rtype is WalRecordType.ALLOC:
                file_id, page_no = _PAGE_HEAD.unpack_from(body, pos)
                if pos + _PAGE_HEAD.size != len(body):
                    raise WalError("ALLOC record carries trailing bytes")
            elif pos != len(body):
                raise WalError(
                    f"{rtype.name} record carries trailing bytes")
        except (struct.error, UnicodeDecodeError) as exc:
            raise WalError(f"malformed WAL record payload: {exc}") from None
        return cls(rtype, stmt_id, file_id, page_no, image, note), start + length


@dataclass
class StatementLog:
    """All records of one statement, grouped for replay."""

    stmt_id: int
    note: str = ""
    committed: bool = False
    befores: list[WalRecord] = field(default_factory=list)
    afters: list[WalRecord] = field(default_factory=list)
    allocs: list[WalRecord] = field(default_factory=list)


class _Scope:
    """Per-thread bookkeeping of one active WAL statement.

    Statements from different sessions now run concurrently, so the
    single-writer instance fields became one scope object per executing
    thread.  The global log (``records``) interleaves records from all
    scopes in append order; each scope also remembers *its* records (by
    identity) so commit/abort/read-only-removal touch exactly the right
    entries no matter how the tail interleaved.
    """

    __slots__ = ("stmt_id", "note", "records", "snapshots", "dirty",
                 "dirty_set", "allocated", "any_flushed", "bytes")

    def __init__(self, note: str = "") -> None:
        self.stmt_id = 0
        self.note = note
        self.records: list[WalRecord] = []
        self.snapshots: dict[_PageKey, bytes] = {}
        self.dirty: list[_PageKey] = []
        self.dirty_set: set[_PageKey] = set()
        self.allocated: set[_PageKey] = set()
        #: a log force made (at least) this scope's BEGIN durable; a
        #: read-only commit must then retain its records instead of
        #: silently un-writing durable bytes.
        self.any_flushed = False
        #: framed bytes this scope appended (the statement's wal_bytes).
        self.bytes = 0


class WriteAheadLog:
    """The statement-scoped physical log of one database.

    Thread-safe: concurrent statements append to the shared tail under
    one short ``_log_mutex``; per-statement state lives in thread-local
    :class:`_Scope` objects.  Commit-listener dispatch happens under a
    separate ``_commit_mutex`` *after* the commit is durable, so the
    replication hub observes commits in LSN order with no gaps.

    ``group_commit_ms > 0`` enables group commit: the first committer to
    reach :meth:`flush` becomes the *leader*, waits up to the window for
    followers to append their records, then forces the whole batch with
    one flush.  A flush failure is propagated to every committer whose
    records were in the failed batch.  The default (0) forces each
    commit immediately -- bit-for-bit the pre-group-commit behavior.
    """

    def __init__(self, metrics=None, telemetry=None,
                 group_commit_ms: float = 0.0, faults=None) -> None:
        metrics = metrics if metrics is not None else NULL_METRICS
        #: optional Telemetry bundle: when its tracer is enabled, real log
        #: forces are recorded as ``wal_flush`` spans (the WAL is accounted
        #: on its own device, so the span carries no page I/O).
        self._telemetry = telemetry
        #: optional :class:`repro.recovery.faults.FaultInjector`; its
        #: :meth:`on_wal_flush` hook fires inside :meth:`flush` *before*
        #: any record is marked durable.
        self.faults = faults
        #: group-commit window in milliseconds (0 = force immediately).
        self.group_commit_ms = group_commit_ms
        self._m_records = metrics.counter(
            "wal_records_total", "records appended to the write-ahead log")
        self._m_flushes = metrics.counter(
            "wal_flushes_total", "log forces (WAL-before-data and commits)")
        self._m_bytes = metrics.counter(
            "wal_bytes_total", "bytes appended to the write-ahead log")
        self._m_group_joins = metrics.counter(
            "wal_group_commit_joins_total",
            "commits that joined another leader's flush batch")
        self._m_group_fail = metrics.counter(
            "wal_group_commit_failures_total",
            "commits that saw a group-flush failure (leader or follower)")
        self.records: list[WalRecord] = []
        self._flushed = 0  # records known durable
        self._next_stmt_id = 1
        #: durable log-sequence number: committed statements since this
        #: log was created.  Monotonic across :meth:`checkpoint` (which
        #: truncates ``records`` but never rewinds the stream position),
        #: so replication consumers can address "the N-th committed
        #: statement" forever.
        self.commit_lsn = 0
        #: ``cb(lsn, note, records)`` called after each commit becomes
        #: durable, with the statement's full record tuple -- the tail
        #: stream replication ships to followers.  Listeners run inside
        #: the committing thread under ``_commit_mutex``, so entries are
        #: observed in commit order even with concurrent committers.
        self.commit_listeners: list = []
        # -- concurrency state ------------------------------------------
        # _log_mutex guards records/_flushed/_next_stmt_id/_scopes; it is
        # an RLock so scope teardown can run from paths that already hold
        # it.  _flush_cond coordinates group commit on the same lock.
        self._log_mutex = threading.RLock()
        self._flush_cond = threading.Condition(self._log_mutex)
        self._commit_mutex = threading.Lock()
        self._local = threading.local()
        self._scopes: list[_Scope] = []
        self._flush_leader: int | None = None
        self._flush_error: tuple = (None, 0)
        #: set when a statement died on a :class:`DiskFault`; the log keeps
        #: its incomplete tail and the database must ``recover()``.
        self.needs_recovery = False

    # -- statement lifecycle -------------------------------------------------

    def _scope(self) -> _Scope | None:
        return getattr(self._local, "scope", None)

    def _require_scope(self) -> _Scope:
        scope = self._scope()
        if scope is None:
            raise WalError("no WAL statement is active")
        return scope

    @property
    def in_statement(self) -> bool:
        """Whether any thread currently has an open statement scope."""
        return bool(self._scopes)

    def begin(self, note: str = "") -> int:
        """Open a statement; every page touched until commit belongs to it."""
        if self._scope() is not None:
            raise WalError("a WAL statement is already active")
        scope = _Scope(note)
        with self._log_mutex:
            scope.stmt_id = self._next_stmt_id
            self._next_stmt_id += 1
            self._scopes.append(scope)
            self._append_locked(
                WalRecord(WalRecordType.BEGIN, scope.stmt_id, note=note),
                scope)
        self._local.scope = scope
        return scope.stmt_id

    def commit(self, read_image) -> int:
        """Log after-images of every dirty page, then the commit record.

        ``read_image((file_id, page_no)) -> bytes`` must return the
        statement's final image of the page (buffer frame or disk).
        Returns the commit LSN for a mutating statement, else 0.
        """
        scope = self._require_scope()
        if not scope.dirty:
            with self._log_mutex:
                if not scope.any_flushed:
                    # read-only statement: leave no trace in the log
                    self._remove_scope_records(scope)
                    self._end_scope(scope)
                    return 0
            # a force made the BEGIN durable mid-statement; close the
            # statement with an (empty) commit record instead
        afters = [(key, bytes(read_image(key))) for key in scope.dirty]
        with self._log_mutex:
            for key, image in afters:
                self._append_locked(
                    WalRecord(WalRecordType.PAGE_AFTER, scope.stmt_id,
                              key[0], key[1], image), scope)
            self._append_locked(
                WalRecord(WalRecordType.COMMIT, scope.stmt_id), scope)
        try:
            self.flush(group=True)
        except BaseException:
            # the force failed before these records became durable: a
            # crash at this instant loses the redo tail, leaving an
            # incomplete statement that recovery rolls back from its
            # (already-durable, WAL-before-data) before-images.
            with self._log_mutex:
                doomed = {id(r) for r in scope.records
                          if r.type in (WalRecordType.PAGE_AFTER,
                                        WalRecordType.COMMIT)}
                self.records[:] = [r for r in self.records
                                   if id(r) not in doomed]
                self._flushed = min(self._flushed, len(self.records))
                scope.records = [r for r in scope.records
                                 if id(r) not in doomed]
            raise
        shipped = tuple(scope.records)
        mutated = any(r.type in (WalRecordType.PAGE_AFTER,
                                 WalRecordType.ALLOC) for r in shipped)
        self._end_scope(scope)
        if not mutated:
            return 0
        with self._commit_mutex:
            self.commit_lsn += 1
            lsn = self.commit_lsn
            note = shipped[0].note if shipped and \
                shipped[0].type is WalRecordType.BEGIN else ""
            for listener in list(self.commit_listeners):
                listener(lsn, note, shipped)
        return lsn

    def abort(self) -> tuple[list[WalRecord], list[WalRecord]]:
        """Roll the active statement out of the log (live rollback).

        Returns ``(before_records, alloc_records)`` in log order so the
        caller can restore images (reversed) and truncate allocations; the
        statement's records are dropped from the tail.
        """
        scope = self._require_scope()
        with self._log_mutex:
            self._remove_scope_records(scope)
        befores = [r for r in scope.records
                   if r.type is WalRecordType.PAGE_BEFORE]
        allocs = [r for r in scope.records
                  if r.type is WalRecordType.ALLOC]
        self._end_scope(scope)
        return befores, allocs

    def mark_crashed(self) -> None:
        """A disk fault killed the statement: keep the incomplete tail."""
        scope = self._scope()
        if scope is not None:
            self._end_scope(scope)
        self.needs_recovery = True

    def last_statement_bytes(self) -> int:
        """Framed WAL bytes appended by the most recently closed
        statement scope *on this thread* (the per-statement ``wal_bytes``
        attribution -- a global counter delta would blend concurrent
        statements together)."""
        return getattr(self._local, "last_bytes", 0)

    def _end_scope(self, scope: _Scope) -> None:
        with self._log_mutex:
            try:
                self._scopes.remove(scope)
            except ValueError:
                pass
        self._local.scope = None
        self._local.last_bytes = scope.bytes

    def _remove_scope_records(self, scope: _Scope) -> None:
        """Drop ``scope``'s records from the shared tail (mutex held).

        Sequentially the scope's records are exactly the tail, so the
        fast path is a tail truncation -- byte-identical to the old
        single-writer ``del records[stmt_start:]``.  Under concurrency
        they may interleave with other scopes' records and are removed
        by identity.
        """
        n = len(scope.records)
        if n == 0:
            return
        if len(self.records) >= n and all(
                a is b for a, b in zip(self.records[-n:], scope.records)):
            del self.records[-n:]
        else:
            doomed = {id(r) for r in scope.records}
            self.records[:] = [r for r in self.records
                               if id(r) not in doomed]
        self._flushed = min(self._flushed, len(self.records))

    # -- buffer-pool hooks ---------------------------------------------------

    def observe_fetch(self, key: _PageKey, data) -> None:
        """Capture the pre-statement image of a page on first contact."""
        scope = self._scope()
        if scope is None:
            return
        if key in scope.snapshots or key in scope.dirty_set:
            return
        scope.snapshots[key] = bytes(data)

    def observe_dirty(self, key: _PageKey) -> None:
        """A fetched page was mutated: promote its snapshot to an undo record."""
        scope = self._scope()
        if scope is None:
            return
        if key in scope.dirty_set:
            return
        if key in scope.allocated:
            scope.dirty.append(key)
            scope.dirty_set.add(key)
            return
        try:
            image = scope.snapshots.pop(key)
        except KeyError:
            raise WalError(
                f"page {key} dirtied without a prior fetch in this statement"
            ) from None
        with self._log_mutex:
            self._append_locked(
                WalRecord(WalRecordType.PAGE_BEFORE, scope.stmt_id,
                          key[0], key[1], image), scope)
        scope.dirty.append(key)
        scope.dirty_set.add(key)

    def observe_alloc(self, file_id: int, page_no: int) -> None:
        """A page is about to be allocated for the active statement."""
        scope = self._scope()
        if scope is None:
            return
        with self._log_mutex:
            self._append_locked(
                WalRecord(WalRecordType.ALLOC, scope.stmt_id,
                          file_id, page_no), scope)
        key = (file_id, page_no)
        scope.allocated.add(key)
        scope.dirty.append(key)
        scope.dirty_set.add(key)

    def observe_drop_file(self, file_id: int) -> None:
        """A file was dropped mid-statement (e.g. a query's materialised
        temp file): forget everything the active statement knows about it,
        including already-appended undo/alloc records."""
        scope = self._scope()
        if scope is None:
            return
        scope.dirty = [k for k in scope.dirty if k[0] != file_id]
        scope.dirty_set = {k for k in scope.dirty_set if k[0] != file_id}
        scope.allocated = {k for k in scope.allocated if k[0] != file_id}
        scope.snapshots = {k: v for k, v in scope.snapshots.items()
                           if k[0] != file_id}
        doomed = {id(r) for r in scope.records
                  if r.type in (WalRecordType.PAGE_BEFORE,
                                WalRecordType.ALLOC)
                  and r.file_id == file_id}
        if not doomed:
            return
        with self._log_mutex:
            self.records[:] = [r for r in self.records
                               if id(r) not in doomed]
            self._flushed = min(self._flushed, len(self.records))
        scope.records = [r for r in scope.records if id(r) not in doomed]

    def before_data_write(self) -> None:
        """WAL ordering rule: force the log before a dirty page hits disk.

        Always an immediate force (never windowed): the data write is
        already decided, so waiting to batch would only delay it."""
        self.flush()

    def flush(self, group: bool = False) -> None:
        """Make every appended record durable (accounted, instantaneous).

        ``group=True`` (commits only) enables the ``group_commit_ms``
        window: one leader collects concurrently appended records and
        forces them with a single flush for all waiters.
        """
        with self._flush_cond:
            target = len(self.records)
            if self._flushed >= target:
                return
            window_s = self.group_commit_ms / 1000.0
            if not group or window_s <= 0.0:
                self._force(target)
                return
            if self._flush_leader is not None:
                self._m_group_joins.inc()
            while self._flush_leader is not None:
                self._flush_cond.wait()
                if self._flushed >= target:
                    return  # the leader's batch covered us
                error, covered = self._flush_error
                if error is not None and target <= covered:
                    # our records were in the failed batch
                    self._m_group_fail.inc()
                    raise error
                # leader gone without covering us: contend for leadership
            self._flush_leader = threading.get_ident()
            self._flush_error = (None, 0)
            try:
                self._flush_cond.wait(window_s)  # collect followers
                target = len(self.records)       # ... the whole batch
                try:
                    self._force(target)
                except BaseException as exc:
                    self._flush_error = (exc, target)
                    self._m_group_fail.inc()
                    raise
            finally:
                self._flush_leader = None
                self._flush_cond.notify_all()

    def _force(self, target: int) -> None:
        """Force the log through ``target`` records (log mutex held).

        Ordering matters for failure accounting: the fault hook fires
        (and may raise) *inside* the tracer span and **before**
        ``_flushed`` moves or ``wal_flushes_total`` increments, so a
        failed force is observable as exactly that -- no records marked
        durable, no flush counted.
        """
        pending = target - self._flushed
        if pending <= 0:
            return
        tracer = (self._telemetry.tracer
                  if self._telemetry is not None else None)
        waits = (self._telemetry.waits
                 if self._telemetry is not None else None)
        started = (time.perf_counter()
                   if waits is not None and waits.enabled else None)
        try:
            if tracer is not None and tracer.enabled:
                with tracer.span("wal_flush", records=pending):
                    self._force_inner(target)
            else:
                self._force_inner(target)
        finally:
            if started is not None:
                waits.record(WAL_FLUSH, time.perf_counter() - started)

    def _force_inner(self, target: int) -> None:
        if self.faults is not None:
            self.faults.on_wal_flush()
        self._flushed = target
        for scope in self._scopes:
            if scope.records:
                scope.any_flushed = True
        self._m_flushes.inc()

    # -- replay / persistence ------------------------------------------------

    def statements(self) -> list[StatementLog]:
        """Group the log into statements in append order."""
        with self._log_mutex:
            records = list(self.records)
        out: list[StatementLog] = []
        by_id: dict[int, StatementLog] = {}
        for record in records:
            stmt = by_id.get(record.stmt_id)
            if stmt is None:
                stmt = StatementLog(record.stmt_id)
                by_id[record.stmt_id] = stmt
                out.append(stmt)
            if record.type is WalRecordType.BEGIN:
                stmt.note = record.note
            elif record.type is WalRecordType.PAGE_BEFORE:
                stmt.befores.append(record)
            elif record.type is WalRecordType.PAGE_AFTER:
                stmt.afters.append(record)
            elif record.type is WalRecordType.ALLOC:
                stmt.allocs.append(record)
            elif record.type is WalRecordType.COMMIT:
                stmt.committed = True
        return out

    def serialize(self) -> bytes:
        """The whole log as bytes (magic + framed records)."""
        with self._log_mutex:
            records = list(self.records)
        return WAL_MAGIC + b"".join(r.encode() for r in records)

    def load(self, data: bytes) -> int:
        """Replace the log with a serialized image; returns record count."""
        with self._log_mutex:
            if self._scopes:
                raise WalError("cannot load a WAL while a statement is active")
            if data[:len(WAL_MAGIC)] != WAL_MAGIC:
                raise WalError("bad WAL magic")
            records: list[WalRecord] = []
            offset = len(WAL_MAGIC)
            while offset < len(data):
                record, offset = WalRecord.decode(data, offset)
                records.append(record)
            self.records = records
            self._flushed = len(records)
            if records:
                self._next_stmt_id = max(r.stmt_id for r in records) + 1
            return len(records)

    def checkpoint(self) -> None:
        """Truncate the log (caller guarantees the disk image is current)."""
        with self._log_mutex:
            if self._scopes:
                raise WalError("cannot checkpoint mid-statement")
            self.records.clear()
            self._flushed = 0

    @property
    def has_records(self) -> bool:
        return bool(self.records)

    # -- internals -----------------------------------------------------------

    def _append_locked(self, record: WalRecord, scope: _Scope | None) -> None:
        self.records.append(record)
        if scope is not None:
            scope.records.append(record)
        self._m_records.inc(kind=record.type.name.lower())
        # size accounting without re-encoding full images on the hot path
        size = (
            _FRAME.size + _BODY_HEAD.size + len(record.image)
            + (len(record.note.encode("utf-8")) + _NOTE_LEN.size
               if record.type is WalRecordType.BEGIN else 0)
            + (_PAGE_HEAD.size
               if record.type in (WalRecordType.PAGE_BEFORE,
                                  WalRecordType.PAGE_AFTER,
                                  WalRecordType.ALLOC) else 0))
        self._m_bytes.inc(size)
        if scope is not None:
            scope.bytes += size
