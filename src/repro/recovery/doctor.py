"""``doctor``: structural diagnosis and repair of replicated state.

:meth:`ReplicationManager.verify` answers *"is everything consistent?"*
with a single raised error.  The doctor answers the operational question
*"what exactly is wrong, and can it be fixed?"*: it sweeps the heaps, the
link structures, and every replication path, collects **all** findings
instead of stopping at the first, and -- with ``repair=True`` -- rebuilds
drifted replicated state from the forward paths, which remain the single
source of truth (the paper's invariant: replicas are derived data).

Repairable drift (replicated *values*):

* in-place hidden fields that no longer match the terminal object;
* separate-path replica objects whose fields are stale;
* separate-path reference counts that disagree with the forward count;
* source objects whose hidden replica reference points at the wrong
  replica (or at nothing);
* orphaned replica objects no terminal advertises.

Structural damage (a heap page that no longer decodes, a dangling
forward reference, a link file diverging from the forward references) is
reported but never guessed at -- rebuilding those needs information the
corruption destroyed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IntegrityError, ReproError
from repro.objects.types import FieldKind
from repro.replication.spec import Strategy


@dataclass
class Finding:
    """One observed problem (possibly repaired)."""

    category: str
    subject: str
    detail: str
    repairable: bool = False
    repaired: bool = False

    def render(self) -> str:
        mark = "fixed" if self.repaired else (
            "repairable" if self.repairable else "damage")
        return f"[{mark}] {self.category}: {self.subject} -- {self.detail}"


@dataclass
class DoctorReport:
    """Everything one doctor pass observed (and possibly repaired)."""

    findings: list[Finding] = field(default_factory=list)
    objects_checked: int = 0
    paths_checked: int = 0
    repairs: int = 0

    @property
    def healthy(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"doctor: {self.objects_checked} object(s), "
            f"{self.paths_checked} path(s) checked"
        ]
        if not self.findings:
            lines.append("no problems found")
        for finding in self.findings:
            lines.append(finding.render())
        if self.repairs:
            lines.append(f"{self.repairs} repair(s) applied")
        return "\n".join(lines)


def run_doctor(db, repair: bool = False) -> DoctorReport:
    """Diagnose (and optionally repair) the whole database."""
    report = DoctorReport()
    manager = db.replication
    metrics = db.telemetry.metrics
    m_repairs = metrics.counter(
        "doctor_repairs_total", "replicated structures rebuilt by doctor")

    def repaired(finding: Finding) -> None:
        finding.repaired = True
        report.repairs += 1
        m_repairs.inc(category=finding.category)

    try:
        manager.refresh_all()
    except ReproError as exc:
        report.findings.append(Finding(
            "lazy-refresh", "refresh_all", f"lazy drain failed: {exc}"))

    _check_structure(db, report)
    with db.recovery.statement("doctor repair" if repair else "doctor"):
        for path in db.catalog.paths.values():
            report.paths_checked += 1
            if path.strategy is Strategy.IN_PLACE:
                _check_inplace_path(db, path, report, repair, repaired)
            else:
                _check_separate_path(db, path, report, repair, repaired)

    # residual divergence doctor cannot rebuild (link structure etc.)
    try:
        manager.verify()
    except IntegrityError as exc:
        report.findings.append(Finding("integrity", "verify", str(exc)))
    except ReproError as exc:
        report.findings.append(Finding("integrity", "verify",
                                       f"verify aborted: {exc}"))
    return report


def diff_databases(left, right, left_name: str = "left",
                   right_name: str = "right") -> list[str]:
    """Byte-level disk comparison of two databases.

    Flushes both buffer pools and compares the simulated disks file by
    file, page by page.  Returns human-readable difference strings; an
    empty list means the two disks are byte-identical.  The failover
    harness uses this as its zero-loss oracle: a promoted follower must
    be indistinguishable on disk from a primary that executed exactly
    the acknowledged statements.
    """
    diffs: list[str] = []
    for db in (left, right):
        db.storage.pool.flush_all()
    ldisk, rdisk = left.storage.disk, right.storage.disk
    lfiles, rfiles = ldisk.file_ids(), rdisk.file_ids()
    if lfiles != rfiles:
        only_l = sorted(set(lfiles) - set(rfiles))
        only_r = sorted(set(rfiles) - set(lfiles))
        if only_l:
            diffs.append(f"files only in {left_name}: {only_l}")
        if only_r:
            diffs.append(f"files only in {right_name}: {only_r}")
    for fid in sorted(set(lfiles) & set(rfiles)):
        lp, rp = ldisk.num_pages(fid), rdisk.num_pages(fid)
        if lp != rp:
            diffs.append(
                f"file {fid}: {left_name} has {lp} page(s), "
                f"{right_name} has {rp}")
        for page_no in range(min(lp, rp)):
            if ldisk.peek_page(fid, page_no) != rdisk.peek_page(fid, page_no):
                diffs.append(f"file {fid} page {page_no}: images differ")
    return diffs


# ---------------------------------------------------------------------------
# structural sweep
# ---------------------------------------------------------------------------


def _check_structure(db, report: DoctorReport) -> None:
    """Heap decodability, dangling references, unknown bookkeeping ids."""
    sets = list(db.catalog.sets.values()) + list(
        db.replication.replica_sets.values())
    known_links = set(db.catalog.links)
    known_paths = {p.path_id for p in db.catalog.paths.values()}
    for obj_set in sets:
        try:
            members = list(obj_set.scan())
        except ReproError as exc:
            report.findings.append(Finding(
                "heap", obj_set.name, f"scan failed: {exc}"))
            continue
        for oid, obj in members:
            report.objects_checked += 1
            for fdef in obj.type_def.fields:
                if fdef.kind is not FieldKind.REF or fdef.hidden:
                    continue
                target = obj.values.get(fdef.name)
                if target is not None and not db.store.exists(target):
                    report.findings.append(Finding(
                        "dangling-ref", f"{obj_set.name}.{fdef.name} @ {oid}",
                        f"references missing object {target}"))
            for entry in obj.link_entries:
                if entry.base_id not in known_links:
                    report.findings.append(Finding(
                        "link", f"{obj_set.name} @ {oid}",
                        f"carries entry for unknown link {entry.base_id}"))
            for entry in obj.replica_entries:
                if entry.path_id not in known_paths:
                    report.findings.append(Finding(
                        "replica-set", f"{obj_set.name} @ {oid}",
                        f"carries entry for unknown path {entry.path_id}"))


# ---------------------------------------------------------------------------
# in-place paths: hidden values are derived from the forward chain
# ---------------------------------------------------------------------------


def _check_inplace_path(db, path, report, repair, repaired) -> None:
    manager = db.replication
    src = db.catalog.get_set(path.source_set)
    for oid, obj in list(src.scan()):
        try:
            expected = manager._hidden_values_for(path, obj)
        except ReproError as exc:
            report.findings.append(Finding(
                "forward-path", f"{path.text} @ {oid}",
                f"forward traversal failed: {exc}"))
            continue
        drift = {
            hname: value
            for hname, value in expected.items()
            if obj.values.get(hname) != value
        }
        if not drift:
            continue
        finding = Finding(
            "inplace-value", f"{path.text} @ {oid}",
            f"{len(drift)} hidden field(s) diverge from the terminal "
            f"({', '.join(sorted(drift))})",
            repairable=True)
        report.findings.append(finding)
        if repair:
            manager.apply_hidden_changes(src, oid, drift)
            repaired(finding)


# ---------------------------------------------------------------------------
# separate paths: replica objects, refs, and reference counts
# ---------------------------------------------------------------------------


def _check_separate_path(db, path, report, repair, repaired) -> None:
    manager = db.replication
    src = db.catalog.get_set(path.source_set)
    replica_set = manager.replica_sets[path.path_id]
    expected_refs: dict = {}  # terminal OID -> set of level-(n-1) participants
    source_rows = list(src.scan())
    for oid, obj in source_rows:
        participant, terminal_oid = manager._separate_terminal_edge(
            path, oid, obj)
        if terminal_oid is not None:
            expected_refs.setdefault(terminal_oid, set()).add(participant)
    live_replicas = set()
    for terminal_oid, participants in expected_refs.items():
        terminal = db.store.read(terminal_oid)
        entry = terminal.replica_entry_for(path.path_id)
        if entry is None or not replica_set.contains(entry.replica_oid):
            finding = Finding(
                "replica-set", f"{path.text} terminal {terminal_oid}",
                "terminal has no live replica object", repairable=True)
            report.findings.append(finding)
            if repair:
                live_replicas.add(_rebuild_replica(
                    db, path, terminal_oid, terminal, len(participants)))
                repaired(finding)
            continue
        live_replicas.add(entry.replica_oid)
        replica = replica_set.read(entry.replica_oid)
        stale = {
            fname: terminal.values[fname]
            for fname in path.replicated_field_names
            if replica.values[fname] != terminal.values[fname]
        }
        if stale:
            finding = Finding(
                "replica-value", f"{path.text} replica {entry.replica_oid}",
                f"{len(stale)} field(s) stale vs terminal {terminal_oid}",
                repairable=True)
            report.findings.append(finding)
            if repair:
                for fname, value in stale.items():
                    replica.set(fname, value)
                replica_set.raw_update(entry.replica_oid, replica)
                repaired(finding)
        if entry.refcount != len(participants):
            finding = Finding(
                "replica-refcount", f"{path.text} terminal {terminal_oid}",
                f"refcount {entry.refcount}, forward count {len(participants)}",
                repairable=True)
            report.findings.append(finding)
            if repair:
                from repro.objects.instance import ReplicaEntry

                terminal = db.store.read(terminal_oid)
                terminal.set_replica_entry(ReplicaEntry(
                    entry.replica_oid, len(participants), path.path_id))
                db.store.update(terminal_oid, terminal)
                repaired(finding)
    # hidden replica references on source objects
    for oid, obj in source_rows:
        __, terminal_oid = manager._separate_terminal_edge(path, oid, obj)
        want = None
        if terminal_oid is not None:
            entry = db.store.read(terminal_oid).replica_entry_for(path.path_id)
            want = entry.replica_oid if entry is not None else None
        have = db.store.read(oid).values.get(path.hidden_ref)
        if have != want:
            finding = Finding(
                "replica-ref", f"{path.text} @ {oid}",
                f"hidden ref {have} should be {want}", repairable=True)
            report.findings.append(finding)
            if repair:
                manager.apply_hidden_changes(src, oid, {path.hidden_ref: want})
                repaired(finding)
    # orphaned replica objects nobody advertises
    for roid, __obj in list(replica_set.scan()):
        if roid in live_replicas:
            continue
        finding = Finding(
            "replica-orphan", f"{path.text} replica {roid}",
            "replica object is not referenced by any terminal",
            repairable=True)
        report.findings.append(finding)
        if repair:
            replica_set.raw_delete(roid)
            repaired(finding)


def _rebuild_replica(db, path, terminal_oid, terminal, refcount: int):
    """Recreate a missing replica object from its terminal (forward truth);
    returns the new replica's OID."""
    from repro.objects.instance import ReplicaEntry

    replica_set = db.replication.replica_sets[path.path_id]
    replica = replica_set.make_object({
        fname: terminal.values[fname]
        for fname in path.replicated_field_names
    })
    replica_oid = replica_set.raw_insert(replica)
    terminal.set_replica_entry(ReplicaEntry(replica_oid, refcount,
                                            path.path_id))
    db.store.update(terminal_oid, terminal)
    return replica_oid
