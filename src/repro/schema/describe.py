"""Human-readable schema introspection.

Renders types, sets, replication paths, links, and indexes the way the
paper's figures sketch them -- handy in the interactive shell and in
examples.
"""

from __future__ import annotations

from repro.objects.types import FieldKind
from repro.schema.database import Database


def describe_type(db: Database, type_name: str) -> str:
    type_def = db.registry.get(type_name)
    lines = [f"define type {type_def.name} ("]
    for f in type_def.fields:
        if f.kind is FieldKind.CHAR:
            kind = f"char[{f.size}]"
        elif f.kind is FieldKind.REF:
            kind = f"ref {f.ref_type}"
        else:
            kind = f.kind.value
        hidden = "   -- hidden (replicated)" if f.hidden else ""
        lines.append(f"    {f.name}: {kind},{hidden}")
    lines[-1] = lines[-1].replace(",", "", 1) if not type_def.fields else lines[-1]
    lines.append(")")
    return "\n".join(lines)


def describe_set(db: Database, set_name: str) -> str:
    obj_set = db.catalog.get_set(set_name)
    base = obj_set.type_def.base or obj_set.type_def.name
    lines = [
        f"create {set_name}: {{own ref {base}}}"
        f"   -- {obj_set.count()} objects on {obj_set.num_pages()} pages"
    ]
    hidden = obj_set.type_def.hidden_fields()
    if hidden:
        lines.append(f"    hidden fields: {', '.join(f.name for f in hidden)}")
    return "\n".join(lines)


def describe_path(db: Database, path_text: str) -> str:
    path = db.catalog.get_path(path_text)
    flavor = path.strategy.value
    if path.collapsed:
        flavor += ", collapsed"
    if path.lazy:
        flavor += ", lazy"
    lines = [f"replicate {path.text}   -- {flavor}, link sequence {path.link_sequence}"]
    for link_id in path.link_sequence:
        link = db.catalog.get_link(link_id)
        count = sum(1 for __ in link.file.scan())
        sharers = [
            use.path.text
            for use in db.catalog.paths_using_link(link_id)
            if use.path.text != path.text
        ]
        shared = f", shared with {sharers}" if sharers else ""
        lines.append(
            f"    link {link_id} = {path.source_set}.{'.'.join(link.prefix)}^-1: "
            f"{count} link objects{shared}"
        )
    if path.replica_set is not None:
        replicas = db.replication.replica_sets[path.path_id].count()
        lines.append(f"    replica set {path.replica_set}: {replicas} shared replicas")
    if path.index_names:
        lines.append(f"    indexed by: {', '.join(path.index_names)}")
    return "\n".join(lines)


def describe_database(db: Database) -> str:
    """The full schema: types, sets, paths, indexes."""
    sections = []
    base_types = sorted(
        {
            obj_set.type_def.base or obj_set.type_def.name
            for obj_set in db.catalog.sets.values()
        }
    )
    for name in base_types:
        sections.append(describe_type(db, name))
    for name in db.catalog.set_names():
        sections.append(describe_set(db, name))
    for text in sorted(db.catalog.paths):
        sections.append(describe_path(db, text))
    for info in sorted(db.catalog.indexes.values(), key=lambda i: i.name):
        kind = "clustered btree" if info.clustered else "btree"
        target = info.path_text or f"{info.set_name}.{info.field_name}"
        sections.append(f"build {kind} on {target}   -- {info.name}, "
                        f"{info.index.count()} entries, height {info.index.height}")
    return "\n\n".join(sections)
