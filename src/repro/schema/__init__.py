"""Schema layer: reference paths, system catalog, database facade, parser.

``Catalog`` / ``Database`` are re-exported lazily to keep this package
importable from the replication layer without a cycle.
"""

from repro.schema.paths import ALL, ResolvedPath, resolve_path

__all__ = [
    "ALL",
    "Catalog",
    "Database",
    "IndexInfo",
    "LinkDef",
    "ResolvedPath",
    "resolve_path",
]


def __getattr__(name):
    if name in ("Catalog", "IndexInfo", "LinkDef"):
        from repro.schema import catalog

        return getattr(catalog, name)
    if name == "Database":
        from repro.schema.database import Database

        return Database
    raise AttributeError(f"module 'repro.schema' has no attribute {name!r}")
