"""The database facade.

A :class:`Database` is one complete system instance: simulated disk +
buffer pool, type registry, object store, catalog, replication manager,
and query processor.  All data manipulation should go through this facade
-- it is the layer that keeps indexes and replicated data consistent, the
way the paper's query-processing / storage layers would.

DDL mirrors the paper's EXTRA-ish statements::

    db.define_type(...)                      # define type EMP (...)
    db.create_set("Emp1", "EMP")             # create Emp1: {own ref EMP}
    db.replicate("Emp1.dept.name")           # replicate Emp1.dept.name
    db.build_index("Emp1.dept.name")         # build btree on Emp1.dept.name

DML::

    oid = db.insert("Emp1", {...})
    db.update("Emp1", oid, {"salary": 120_000})
    db.delete("Emp1", oid)

Text-form queries (``retrieve (...) where ...``) live in
:mod:`repro.query`; the :meth:`Database.execute` convenience parses and
runs them.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.cache import (
    DEFAULT_CACHE_BYTES,
    ResultCache,
    structural_resources,
    write_resources,
)
from repro.errors import DiskFault, FieldError, InvalidPathError, ReplicationError
from repro.index.secondary import SecondaryIndex
from repro.objects.instance import StoredObject
from repro.objects.registry import TypeRegistry
from repro.objects.store import ObjectStore
from repro.objects.types import TypeDefinition
from repro.replication.manager import ReplicationManager
from repro.replication.spec import Strategy
from repro.schema.catalog import Catalog, IndexInfo
from repro.sets.objectset import ObjectSet
from repro.storage.constants import DEFAULT_BUFFER_FRAMES, JOIN_BATCH_ROWS
from repro.storage.manager import StorageManager
from repro.storage.oid import OID
from repro.telemetry import Telemetry


class Database:
    """One object-oriented database instance with field replication."""

    def __init__(self, buffer_frames: int = DEFAULT_BUFFER_FRAMES,
                 inline_singleton_links: bool = False,
                 cost_based_planning: bool = False,
                 wal: bool = False, fault_seed: int = 0,
                 join_mode: str = "batched",
                 join_batch_rows: int = JOIN_BATCH_ROWS,
                 cache: bool = False,
                 cache_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        from repro.recovery import FaultInjector, RecoveryManager

        self.telemetry = Telemetry()
        #: deterministic disk fault injection (inert until armed)
        self.faults = FaultInjector(seed=fault_seed,
                                    metrics=self.telemetry.metrics)
        self.storage = StorageManager(buffer_frames=buffer_frames,
                                      metrics=self.telemetry.metrics,
                                      faults=self.faults)
        self.telemetry.attach_stats(self.storage.stats)
        self.storage.pool.waits = self.telemetry.waits
        self.registry = TypeRegistry()
        self.store = ObjectStore(self.storage, self.registry)
        self.catalog = Catalog(self.registry)
        self.replication = ReplicationManager(
            self.catalog, self.store, self.storage,
            inline_singleton_links=inline_singleton_links,
            telemetry=self.telemetry,
        )
        #: statement atomicity + crash recovery; ``wal=False`` (the default)
        #: keeps the I/O path bit-identical to an unlogged engine
        self.recovery = RecoveryManager(self, wal=wal)
        self.replication.recovery = self.recovery
        from repro.monitor import WorkloadMonitor

        self.monitor = WorkloadMonitor()
        self.monitor.drift = self.telemetry.drift
        self.monitor.ledger = self.telemetry.repledger
        #: opt-in: let the planner fall back to file scans when the §6-style
        #: cost estimate says the index would read more pages (§7.1)
        self.cost_based_planning = cost_based_planning
        #: executor strategy for functional joins: "naive" row-at-a-time
        #: probes or "batched" sort-and-dedupe sweeps with scan read-ahead
        self._join_mode_local = threading.local()
        self.join_mode = join_mode
        #: rows drained per sort-and-dedupe batch in batched mode
        self.join_batch_rows = max(1, join_batch_rows)
        #: derived-result cache; off by default so the I/O path stays
        #: bit-identical to an uncached engine.  Invalidation hooks below
        #: fire whenever entries exist, even with ``enabled`` off -- a
        #: served session may opt in per-session while the default is off
        self.resultcache = ResultCache(capacity_bytes=cache_bytes,
                                       enabled=cache,
                                       metrics=self.telemetry.metrics)
        #: ``cb(text, next_file_id)`` fired after each successful *text*
        #: DDL statement (:func:`repro.schema.parser.execute_ddl`), with
        #: the file-id cursor as it stood before the DDL ran.  DDL runs
        #: outside WAL statement scope, so the replication hub ships it
        #: logically through this hook instead of as page images.
        self.ddl_listeners: list = []
        self._next_index_id = 1

    @property
    def join_mode(self) -> str:
        override = getattr(self._join_mode_local, "mode", None)
        return override if override is not None else self._join_mode

    @join_mode.setter
    def join_mode(self, value: str) -> None:
        if value not in ("naive", "batched"):
            raise ValueError(f"join_mode must be 'naive' or 'batched', "
                             f"not {value!r}")
        self._join_mode = value

    @contextmanager
    def join_mode_scope(self, value: str | None):
        """Override ``join_mode`` for this thread only.

        Served sessions carry per-session join-mode settings; with
        statements executing concurrently, a session must not flip the
        database-wide default under another session's feet.
        """
        if value is not None and value not in ("naive", "batched"):
            raise ValueError(f"join_mode must be 'naive' or 'batched', "
                             f"not {value!r}")
        previous = getattr(self._join_mode_local, "mode", None)
        self._join_mode_local.mode = value
        try:
            yield
        finally:
            self._join_mode_local.mode = previous

    def _invalidate_ddl(self) -> None:
        """Schema changes invalidate every cached result: each entry's
        footprint carries the ``__schema`` resource all DDL takes
        exclusively, so this is the footprint rule, not a special case."""
        if len(self.resultcache):
            self.resultcache.invalidate_all(reason="ddl")

    # ==================================================================
    # DDL
    # ==================================================================

    def define_type(self, type_def: TypeDefinition) -> None:
        """Register a type (``define type ...``)."""
        self.registry.register(type_def)

    def create_set(self, name: str, type_name: str) -> ObjectSet:
        """Create a named set (``create Name: {own ref TYPE}``).

        Each set gets a private *instance* of its member type (same fields,
        own type tag).  This is what lets replication widen ``Emp1``'s
        objects with hidden fields while leaving ``Emp2`` -- another set of
        the same declared type -- untouched: "field replication is
        associated with instance rather than type" (Section 3.2).
        """
        base = self.registry.get(type_name)
        clone = TypeDefinition(f"{type_name}__{name}", base.fields, base=type_name)
        self.registry.register(clone)
        heap = self.storage.create_file(name)
        obj_set = ObjectSet(name, clone.name, self.store, heap)
        self.catalog.add_set(obj_set)
        self.recovery.on_ddl()
        self._invalidate_ddl()
        return obj_set

    def drop_set(self, name: str) -> None:
        """Drop a set and all its members (``own ref`` existence semantics).

        The members go down with the set -- but not the objects they merely
        reference (Section 2.1).  Refused while the set is the source of a
        replication path, or while any member is still referenced on some
        other path (dangling inverse mappings would result).
        """
        from repro.errors import IntegrityError

        obj_set = self.catalog.get_set(name)
        sourced = self.catalog.paths_on_source(name)
        if sourced:
            raise ReplicationError(
                f"drop replication path(s) {[p.text for p in sourced]} "
                f"before dropping set {name!r}"
            )
        for oid, obj in obj_set.scan():
            if obj.link_entries or obj.replica_entries:
                raise IntegrityError(
                    f"set {name!r} member {oid} is referenced on a replication "
                    f"path; drop the referencing structures first"
                )
        for info in list(self.catalog.indexes_on_set(name)):
            self.drop_index(info.name)
        self.catalog.remove_set(name)
        self.storage.drop_file(name)
        self.recovery.on_ddl()
        self._invalidate_ddl()

    def replicate(self, path_text: str, strategy: str | Strategy = Strategy.IN_PLACE,
                  collapsed: bool = False, lazy: bool = False,
                  cluster_links: bool = False):
        """Create a replication path (``replicate Set.ref...field``)."""
        if isinstance(strategy, str):
            strategy = Strategy(strategy)
        path = self.replication.register_path(path_text, strategy,
                                              collapsed=collapsed, lazy=lazy,
                                              cluster_links=cluster_links)
        self.recovery.on_ddl()
        self._invalidate_ddl()
        return path

    def drop_replication(self, path_text: str) -> None:
        """Remove a replication path and its structures."""
        self.replication.drop_path(path_text)
        self.telemetry.repledger.forget(path_text)
        self.recovery.on_ddl()
        self._invalidate_ddl()

    def build_index(self, target: str, clustered: bool = False,
                    name: str | None = None) -> IndexInfo:
        """Build a B+-tree (``build btree on Set.field`` or on a path).

        ``target`` is either ``Set.field`` (an ordinary secondary index) or
        a replicated path such as ``Emp1.dept.org.name`` -- in that case
        the tree is keyed on the hidden replicated values, mapping terminal
        values directly to source-set objects (Section 3.3.4).  Path
        indexes require the path to be replicated *in-place*: separate
        replication shares values between objects, so the value -> object
        mapping the index needs is not materialised per source object.
        """
        parts = target.split(".")
        if len(parts) < 2:
            raise InvalidPathError(f"index target {target!r} needs a set and a field")
        set_name = parts[0]
        obj_set = self.catalog.get_set(set_name)
        path_text = None
        if len(parts) == 2:
            field_name = parts[1]
            fdef = obj_set.type_def.field_def(field_name)
            if fdef.hidden:
                raise FieldError(f"cannot index hidden field {field_name!r} directly")
        else:
            path = self.catalog.find_path(set_name, tuple(parts[1:-1]), parts[-1])
            if path is None:
                raise ReplicationError(
                    f"index target {target!r} is a path: replicate it first"
                )
            if path.strategy is not Strategy.IN_PLACE or path.collapsed:
                raise ReplicationError(
                    "indexes on replicated data require plain in-place replication"
                )
            if path.lazy:
                raise ReplicationError(
                    "indexes on lazily propagated paths would go stale; use eager"
                )
            field_name = path.hidden_field_for(parts[-1])
            fdef = obj_set.type_def.field_def(field_name)
            path_text = path.text
        index_name = name or f"idx{self._next_index_id}_{set_name}_{field_name}"
        self._next_index_id += 1
        file_id = self.storage.create_raw_file(f"__idx_{index_name}")
        index = SecondaryIndex(index_name, self.storage.pool, file_id, fdef,
                               set_name, clustered=clustered,
                               metrics=self.telemetry.metrics)
        info = IndexInfo(index_name, set_name, field_name, index,
                         clustered=clustered, path_text=path_text)
        self.catalog.add_index(info)
        if path_text is not None:
            self.catalog.get_path(path_text).index_names.append(index_name)
        index.bulk_load(
            (obj.values[field_name], oid) for oid, obj in obj_set.scan()
        )
        self.recovery.on_ddl()
        self._invalidate_ddl()
        return info

    def drop_index(self, index_name: str) -> None:
        """Drop a secondary index."""
        info = self.catalog.drop_index(index_name)
        if info.path_text is not None:
            path = self.catalog.get_path(info.path_text)
            path.index_names.remove(index_name)
        self.storage.drop_raw_file(info.index.tree.file_id)
        self.recovery.on_ddl()
        self._invalidate_ddl()

    # ==================================================================
    # DML
    # ==================================================================

    def insert(self, set_name: str, values: dict) -> OID:
        """Insert an object, maintaining replication and indexes."""
        obj_set = self.catalog.get_set(set_name)
        obj = obj_set.make_object(values)
        with self.recovery.statement(f"insert {set_name}"):
            oid = obj_set.raw_insert(obj)
            self.replication.after_insert(obj_set, oid, obj)
            final = obj_set.read(oid)
            for info in self.catalog.indexes_on_set(set_name):
                info.index.insert(final.values[info.field_name], oid)
        if len(self.resultcache):
            self.resultcache.invalidate(structural_resources(self, set_name))
        return oid

    def update(self, set_name: str, oid: OID, changes: dict,
               record: bool = True) -> None:
        """Update visible fields of one object, propagating as needed.

        ``record=False`` suppresses workload-monitor accounting (bulk
        executors record once per statement instead).
        """
        obj_set = self.catalog.get_set(set_name)
        if record:
            root = self.registry.root_name(obj_set.type_name)
            for fname in changes:
                self.monitor.record_update(root, fname)
        old = obj_set.read(oid)
        new = old.copy()
        changed: set[str] = set()
        for fname, value in changes.items():
            fdef = obj_set.type_def.field_def(fname)
            if fdef.hidden:
                raise FieldError(f"field {fname!r} is replication-internal")
            if old.values[fname] != value:
                new.set(fname, value)
                changed.add(fname)
        if not changed:
            return
        with self.recovery.statement(f"update {set_name}"):
            for info in self.catalog.indexes_on_set(set_name):
                if info.field_name in changed:
                    info.index.update(old.values[info.field_name],
                                      new.values[info.field_name], oid)
            obj_set.raw_update(oid, new)
            own_hidden = self.replication.propagate_update(obj_set, oid, old, new,
                                                           changed)
            if own_hidden:
                self.replication.apply_hidden_changes(obj_set, oid, own_hidden)
        if len(self.resultcache):
            self.resultcache.invalidate(write_resources(self, set_name, changed))

    def delete(self, set_name: str, oid: OID) -> None:
        """Delete an object; refuses while replication still references it."""
        obj_set = self.catalog.get_set(set_name)
        obj = obj_set.read(oid)
        with self.recovery.statement(f"delete {set_name}"):
            self.replication.before_delete(obj_set, oid, obj)
            final = obj_set.read(oid)  # hooks may have rewritten bookkeeping
            for info in self.catalog.indexes_on_set(set_name):
                info.index.delete(final.values[info.field_name], oid)
            obj_set.raw_delete(oid)
        if len(self.resultcache):
            self.resultcache.invalidate(structural_resources(self, set_name))

    def get(self, set_name: str, oid: OID) -> StoredObject:
        """Read one object (hidden fields included, for inspection)."""
        return self.catalog.get_set(set_name).read(oid)

    # ==================================================================
    # queries (delegates to repro.query)
    # ==================================================================

    def execute(self, statement_text: str, **options):
        """Parse and run a ``retrieve`` / ``replace`` statement."""
        from repro.query.runner import execute_text

        return execute_text(self, statement_text, **options)

    def retrieve(self, statement, **options):
        """Run a pre-built retrieve statement object."""
        from repro.query.runner import execute_statement

        return execute_statement(self, statement, **options)

    def explain_analyze(self, statement_text: str, **options):
        """Run a statement with per-operator I/O accounting attached."""
        from repro.query.runner import execute_text

        return execute_text(self, statement_text, analyze=True, **options)

    # ==================================================================
    # maintenance / instrumentation
    # ==================================================================

    def verify(self) -> None:
        """Check every replication invariant (raises IntegrityError)."""
        self.replication.verify()

    def recover(self, verify: bool = True):
        """Restart after an injected crash: redo committed statements from
        the WAL, roll the incomplete one back, rebuild session caches, and
        (by default) re-verify replication.  Returns a RecoveryReport."""
        self.resultcache.invalidate_all()
        return self.recovery.recover(verify=verify)

    def checkpoint(self) -> None:
        """Flush dirty pages and truncate the write-ahead log."""
        self.recovery.checkpoint()

    def doctor(self, repair: bool = False):
        """Diagnose (and with ``repair=True`` fix) replicated-state drift.

        Returns a :class:`repro.recovery.doctor.DoctorReport`; structural
        damage is reported, value drift is rebuilt from the forward paths.
        """
        from repro.recovery.doctor import run_doctor

        report = run_doctor(self, repair=repair)
        if repair:
            self.resultcache.invalidate_all()
        return report

    def refresh(self, path_text: str | None = None) -> int:
        """Drain lazy propagation queues (all paths when none is named)."""
        if path_text is None:
            refreshed = self.replication.refresh_all()
            touched = [p for p in self.catalog.paths.values() if p.lazy]
        else:
            path = self.catalog.get_path(path_text)
            refreshed = self.replication.refresh_path(path)
            touched = [path]
        if refreshed and len(self.resultcache):
            resources = set()
            for path in touched:
                resources.add(path.source_set)
                if path.replica_set:
                    resources.add(path.replica_set)
            self.resultcache.invalidate(resources)
        return refreshed

    @property
    def stats(self):
        """The shared I/O statistics."""
        return self.storage.stats

    def cold_cache(self) -> None:
        """Flush and empty the buffer pool."""
        try:
            self.storage.cold_cache()
        except DiskFault:
            # a fatal fault mid-flush may have torn a committed page;
            # only recovery may touch the database now
            if self.recovery.wal is not None:
                self.recovery.wal.mark_crashed()
            raise

    def measure(self, fn):
        """Run ``fn()`` and return the I/O snapshot delta."""
        return self.storage.measure(fn)
