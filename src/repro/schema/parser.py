"""DDL parser for the paper's EXTRA-ish surface syntax.

Supported statements (Figure 1 and Sections 3-4 of the paper)::

    define type EMP (
        name:   char[20],
        age:    int,
        salary: int,
        dept:   ref DEPT
    )
    create Emp1: {own ref EMP}
    replicate Emp1.dept.name
    replicate Emp1.dept.org.name using separate
    replicate Emp1.dept.org.name collapsed
    replicate Emp1.dept.name lazy
    build btree on Emp1.dept.org.name
    build clustered btree on Emp1.salary

:func:`run_script` executes a whole script -- DDL statements plus
``retrieve`` / ``replace`` / ``delete`` queries -- returning the query
results in order.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.objects.types import FieldDef, FieldKind, TypeDefinition
from repro.schema.database import Database

_CHAR = re.compile(r"^char\s*\[\s*(\d+)\s*\]$")
_REF = re.compile(r"^ref\s+(\w+)$")
_DEFINE = re.compile(r"^define\s+type\s+(\w+)\s*\((.*)\)\s*$", re.DOTALL)
_CREATE = re.compile(r"^create\s+(\w+)\s*:\s*\{\s*own\s+ref\s+(\w+)\s*\}\s*$")
_REPLICATE = re.compile(
    r"^replicate\s+([\w.]+)((?:\s+(?:using\s+\w+|collapsed|lazy|colocate))*)\s*$"
)
_BUILD = re.compile(r"^build\s+(clustered\s+)?btree\s+on\s+([\w.]+)\s*$")
_DROP = re.compile(r"^drop\s+(replicate|index|set)\s+([\w.]+)\s*$")


def _parse_field(text: str) -> FieldDef:
    name, sep, kind_text = text.partition(":")
    name, kind_text = name.strip(), kind_text.strip()
    if not sep or not name.isidentifier():
        raise ParseError(f"bad field declaration {text!r}")
    if kind_text == "int":
        return FieldDef(name, FieldKind.INT)
    if kind_text == "float":
        return FieldDef(name, FieldKind.FLOAT)
    match = _CHAR.match(kind_text)
    if match:
        return FieldDef(name, FieldKind.CHAR, size=int(match.group(1)))
    match = _REF.match(kind_text)
    if match:
        return FieldDef(name, FieldKind.REF, ref_type=match.group(1))
    raise ParseError(f"unknown field kind {kind_text!r} (int, float, char[n], ref T)")


def parse_type_definition(text: str) -> TypeDefinition:
    """Parse one ``define type ...`` statement."""
    match = _DEFINE.match(text.strip())
    if match is None:
        raise ParseError(f"bad define-type statement: {text!r}")
    name, body = match.group(1), match.group(2)
    fields = [
        _parse_field(chunk)
        for chunk in body.split(",")
        if chunk.strip()
    ]
    if not fields:
        raise ParseError(f"type {name!r} declares no fields")
    return TypeDefinition(name, fields)


def execute_ddl(db: Database, text: str) -> None:
    """Execute one DDL statement against ``db``.

    Listeners in ``db.ddl_listeners`` (the replication hub) are called
    with the statement text and the file-id cursor as it stood *before*
    the DDL ran -- a follower re-executing the statement adopts that
    cursor first, so the files the DDL creates get identical ids on both
    engines.
    """
    body = text.strip().rstrip(";")
    next_file_id = db.storage.disk.next_file_id
    _apply_ddl(db, body)
    for listener in list(db.ddl_listeners):
        listener(body, next_file_id)


def _apply_ddl(db: Database, body: str) -> None:
    if body.startswith("define"):
        db.define_type(parse_type_definition(body))
        return
    match = _CREATE.match(body)
    if match:
        db.create_set(match.group(1), match.group(2))
        return
    match = _REPLICATE.match(body)
    if match:
        path_text, options = match.group(1), match.group(2) or ""
        strategy = "inplace"
        using = re.search(r"using\s+(\w+)", options)
        if using:
            strategy = using.group(1)
            if strategy not in ("inplace", "separate"):
                raise ParseError(f"unknown strategy {strategy!r}")
        db.replicate(
            path_text,
            strategy=strategy,
            collapsed="collapsed" in options,
            lazy="lazy" in options,
            cluster_links="colocate" in options,
        )
        return
    match = _BUILD.match(body)
    if match:
        db.build_index(match.group(2), clustered=bool(match.group(1)))
        return
    match = _DROP.match(body)
    if match:
        kind, target = match.group(1), match.group(2)
        if kind == "replicate":
            db.drop_replication(target)
        elif kind == "index":
            db.drop_index(target)
        else:
            db.drop_set(target)
        return
    raise ParseError(f"unrecognised DDL statement: {body!r}")


_DDL_STARTERS = ("define", "create", "replicate", "build", "drop")
_QUERY_STARTERS = ("retrieve", "replace", "delete", "explain")


def split_script(text: str) -> list[str]:
    """Split a script into statements.

    A statement runs until its parentheses balance; a following line only
    continues it when it is a ``where`` clause.  ``--`` comments are
    stripped.
    """
    statements: list[str] = []
    buffer: list[str] = []
    depth = 0

    def flush() -> None:
        if buffer:
            statements.append("\n".join(buffer))
            buffer.clear()

    for raw_line in text.splitlines():
        line = raw_line.split("--")[0].rstrip()
        if not line.strip():
            if depth == 0:
                flush()
            continue
        continues = line.lstrip().startswith("where")
        if buffer and depth == 0 and not continues:
            flush()
        depth += line.count("(") - line.count(")")
        buffer.append(line)
    flush()
    return [s.strip().rstrip(";").strip() for s in statements if s.strip()]


def run_script(db: Database, text: str) -> list:
    """Run a mixed DDL / query script; returns the query results in order.

    ``explain <query>`` contributes the plan string instead of rows.
    """
    results = []
    for statement in split_script(text):
        first_word = statement.split(None, 1)[0]
        if first_word == "explain":
            from repro.query.runner import explain_text

            results.append(explain_text(db, statement[len("explain"):].strip()))
        elif first_word in _QUERY_STARTERS:
            results.append(db.execute(statement))
        elif first_word in _DDL_STARTERS:
            execute_ddl(db, statement)
        else:
            raise ParseError(f"unrecognised statement: {statement!r}")
    return results
