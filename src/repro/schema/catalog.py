"""The system catalog.

The catalog is the in-memory schema authority: types, sets, indexes,
replication paths, and the link registry ("the association between link
IDs, links, and replication paths would presumably be stored in the system
catalog", Section 4.1.3).

Link ids are allocated per ``(source set, ref-chain prefix)`` so that
replication paths sharing a prefix share links (Section 4.1.4); collapsed
links are private and never shared (Section 4.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import (
    DuplicateNameError,
    DuplicateReplicationPathError,
    UnknownIndexError,
    UnknownReplicationPathError,
    UnknownSetError,
)
from repro.index.secondary import SecondaryIndex
from repro.objects.registry import TypeRegistry
from repro.sets.objectset import ObjectSet

if TYPE_CHECKING:  # imported only for annotations; avoids an import cycle
    from repro.replication.links import LinkFile
    from repro.replication.spec import ReplicationPath


@dataclass
class IndexInfo:
    """Catalog record of one secondary index."""

    name: str
    set_name: str
    #: The stored field the tree is keyed on -- a visible field for plain
    #: indexes, a hidden replicated-value field for path indexes.
    field_name: str
    index: SecondaryIndex
    clustered: bool = False
    #: The replication path this index rides on, if any (Section 3.3.4).
    path_text: str | None = None


@dataclass
class LinkDef:
    """Catalog record of one link of one or more inverted paths."""

    link_id: int
    source_set: str
    #: The forward ref-chain prefix this link inverts (e.g. ``("dept",)``
    #: for ``Emp1.dept^-1``).  The link's *owners* are the objects reached
    #: by the full prefix; its *members* are the objects one hop shorter.
    prefix: tuple[str, ...]
    file: LinkFile
    collapsed: bool = False
    #: Private links (collapsed, or co-located per §4.3.2) are never shared
    #: with other paths.
    private: bool = False
    #: The link one hop shorter in the same inverted path, for closure
    #: walks; None for first links.
    parent_link_id: int | None = None

    @property
    def position(self) -> int:
        """1-based position of this link in its paths' link sequences."""
        return len(self.prefix)


@dataclass
class _PathUse:
    """One path's use of one link: the path and the link's position in it."""

    path: ReplicationPath
    position: int  # 1-based


class Catalog:
    """Schema authority for one database."""

    def __init__(self, registry: TypeRegistry) -> None:
        self.registry = registry
        self.sets: dict[str, ObjectSet] = {}
        self.indexes: dict[str, IndexInfo] = {}
        self.paths: dict[str, ReplicationPath] = {}
        self.paths_by_id: dict[int, ReplicationPath] = {}
        self.links: dict[int, LinkDef] = {}
        self._link_by_key: dict[tuple[str, tuple[str, ...]], int] = {}
        self._next_path_id = 1
        self._next_link_id = 1

    # -- sets -------------------------------------------------------------

    def add_set(self, obj_set: ObjectSet) -> None:
        if obj_set.name in self.sets:
            raise DuplicateNameError(f"set {obj_set.name!r} already exists")
        self.sets[obj_set.name] = obj_set

    def get_set(self, name: str) -> ObjectSet:
        try:
            return self.sets[name]
        except KeyError:
            raise UnknownSetError(f"unknown set {name!r}") from None

    def remove_set(self, name: str) -> ObjectSet:
        """Forget a set (after its structures were dismantled)."""
        obj_set = self.get_set(name)
        del self.sets[name]
        return obj_set

    def set_type_of(self, set_name: str) -> str:
        """Member type name of a set (hook for path resolution)."""
        return self.get_set(set_name).type_name

    def set_names(self) -> list[str]:
        return sorted(self.sets)

    def set_of_file(self, file_id: int) -> ObjectSet | None:
        """The set stored in ``file_id``, if any."""
        for obj_set in self.sets.values():
            if obj_set.file_id == file_id:
                return obj_set
        return None

    # -- indexes ------------------------------------------------------------

    def add_index(self, info: IndexInfo) -> None:
        if info.name in self.indexes:
            raise DuplicateNameError(f"index {info.name!r} already exists")
        self.indexes[info.name] = info

    def get_index(self, name: str) -> IndexInfo:
        try:
            return self.indexes[name]
        except KeyError:
            raise UnknownIndexError(f"unknown index {name!r}") from None

    def drop_index(self, name: str) -> IndexInfo:
        info = self.get_index(name)
        del self.indexes[name]
        return info

    def indexes_on_set(self, set_name: str) -> list[IndexInfo]:
        """All indexes whose entries point into ``set_name``."""
        return [i for i in self.indexes.values() if i.set_name == set_name]

    def index_on_field(self, set_name: str, field_name: str) -> IndexInfo | None:
        """The index keyed on a stored field of a set, if one exists."""
        for info in self.indexes.values():
            if info.set_name == set_name and info.field_name == field_name:
                return info
        return None

    def index_on_path(self, path_text: str) -> IndexInfo | None:
        """The index built on a replication path, if one exists."""
        for info in self.indexes.values():
            if info.path_text == path_text:
                return info
        return None

    # -- replication paths ----------------------------------------------------

    def allocate_path_id(self) -> int:
        path_id = self._next_path_id
        self._next_path_id += 1
        if path_id > 0xFF:
            raise DuplicateReplicationPathError("path-id space (1 byte) exhausted")
        return path_id

    def add_path(self, path: ReplicationPath) -> None:
        if path.text in self.paths:
            raise DuplicateReplicationPathError(f"path {path.text!r} already replicated")
        self.paths[path.text] = path
        self.paths_by_id[path.path_id] = path

    def get_path(self, text: str) -> ReplicationPath:
        try:
            return self.paths[text]
        except KeyError:
            raise UnknownReplicationPathError(f"no replication path {text!r}") from None

    def get_path_by_id(self, path_id: int) -> ReplicationPath:
        try:
            return self.paths_by_id[path_id]
        except KeyError:
            raise UnknownReplicationPathError(f"no replication path id {path_id}") from None

    def drop_path(self, text: str) -> ReplicationPath:
        path = self.get_path(text)
        del self.paths[text]
        del self.paths_by_id[path.path_id]
        return path

    def paths_on_source(self, set_name: str) -> list[ReplicationPath]:
        """Replication paths emanating from ``set_name``."""
        return [p for p in self.paths.values() if p.source_set == set_name]

    def find_path(self, set_name: str, ref_chain: tuple[str, ...],
                  terminal: str) -> ReplicationPath | None:
        """The path replicating exactly ``set.chain.terminal``, if any.

        An ``.all`` path on the same chain also satisfies a scalar terminal
        (full object replication subsumes each field).
        """
        for p in self.paths.values():
            if p.source_set != set_name or p.resolved.ref_chain != ref_chain:
                continue
            if p.resolved.terminal == terminal or terminal in p.replicated_field_names:
                return p
        return None

    # -- links ----------------------------------------------------------------

    def link_for_prefix(self, source_set: str, prefix: tuple[str, ...]) -> LinkDef | None:
        """The shared link on ``source_set`` + ``prefix``, if registered."""
        link_id = self._link_by_key.get((source_set, prefix))
        return self.links[link_id] if link_id is not None else None

    def register_link(self, source_set: str, prefix: tuple[str, ...],
                      file: LinkFile, collapsed: bool = False,
                      private: bool = False,
                      parent_link_id: int | None = None) -> LinkDef:
        """Create a link definition; shared links are keyed by prefix."""
        link_id = self._next_link_id
        self._next_link_id += 1
        if link_id > 0x7F:
            raise DuplicateReplicationPathError("link-id space exhausted")
        link = LinkDef(link_id, source_set, prefix, file, collapsed,
                       private=private, parent_link_id=parent_link_id)
        self.links[link_id] = link
        if not collapsed and not private:
            self._link_by_key[(source_set, prefix)] = link_id
        return link

    def remove_link(self, link_id: int) -> None:
        """Forget a link definition (after its file was dropped)."""
        link = self.get_link(link_id)
        del self.links[link_id]
        if not link.collapsed and not link.private:
            self._link_by_key.pop((link.source_set, link.prefix), None)

    def get_link(self, link_id: int) -> LinkDef:
        try:
            return self.links[link_id]
        except KeyError:
            raise UnknownReplicationPathError(f"unknown link id {link_id}") from None

    def paths_using_link(self, link_id: int) -> list[_PathUse]:
        """Every path whose link sequence contains ``link_id``."""
        uses = []
        for path in self.paths.values():
            for pos, lid in enumerate(path.link_sequence, start=1):
                if lid == link_id:
                    uses.append(_PathUse(path, pos))
        return uses

    def child_links(self, link: LinkDef) -> list[LinkDef]:
        """Links one hop deeper than ``link`` (same source set, used by a
        live path)."""
        out = []
        live = {lid for p in self.paths.values() for lid in p.link_sequence}
        for other in self.links.values():
            if (
                not other.collapsed
                and other.link_id in live
                and other.source_set == link.source_set
                and len(other.prefix) == len(link.prefix) + 1
                and other.prefix[: len(link.prefix)] == link.prefix
            ):
                out.append(other)
        return out

    def root_links(self, source_set: str) -> list[LinkDef]:
        """Links of length-1 prefixes on ``source_set`` used by live paths."""
        live = {lid for p in self.paths.values() for lid in p.link_sequence}
        return [
            l
            for l in self.links.values()
            if not l.collapsed
            and l.link_id in live
            and l.source_set == source_set
            and len(l.prefix) == 1
        ]
