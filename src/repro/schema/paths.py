"""Reference paths.

A *reference path* names data reached from a set through a chain of
reference attributes: ``Emp1.dept.org.name``.  Resolution validates every
hop against the schema and classifies the terminal:

* a scalar field    -- ordinary field replication,
* the keyword ``all`` -- full object replication (Section 3.3.1),
* a ref field       -- path collapsing (Section 3.3.3): the replicated value
  is the terminal reference itself (an OID), so an n-level path shrinks to
  n-1 functional joins.

The path *level* is the number of functional joins the forward path costs:
the length of the reference chain before the terminal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidPathError
from repro.objects.types import FieldDef, FieldKind, TypeDefinition

#: Terminal keyword selecting full object replication.
ALL = "all"


@dataclass(frozen=True)
class ResolvedPath:
    """A validated reference path."""

    #: Name of the set the path emanates from (``Emp1``).
    source_set: str
    #: The reference attributes walked, in order (``("dept", "org")``).
    ref_chain: tuple[str, ...]
    #: The terminal field name, or :data:`ALL`.
    terminal: str
    #: Type names along the path, source type first; ``len == level + 1``.
    type_names: tuple[str, ...]
    #: The visible fields replication copies (resolved against the terminal
    #: type); for a scalar/ref terminal this is a single field.
    replicated_fields: tuple[FieldDef, ...]

    @property
    def level(self) -> int:
        """Number of functional joins on the forward path."""
        return len(self.ref_chain)

    @property
    def terminal_type(self) -> str:
        """Name of the type holding the replicated field(s)."""
        return self.type_names[-1]

    @property
    def text(self) -> str:
        """The path in its ``Set.ref...field`` source form."""
        return ".".join((self.source_set,) + self.ref_chain + (self.terminal,))

    @property
    def is_full_object(self) -> bool:
        """Whether this is an ``.all`` full-object replication path."""
        return self.terminal == ALL

    def prefix_chains(self):
        """All non-empty ref-chain prefixes, shortest first.

        ``Emp1.dept.org.name`` yields ``("dept",)`` then ``("dept", "org")``
        -- one per link of the inverted path (Section 4.1.2).
        """
        for i in range(1, len(self.ref_chain) + 1):
            yield self.ref_chain[:i]


def resolve_path(text: str, set_type_of, type_lookup) -> ResolvedPath:
    """Resolve ``"Emp1.dept.org.name"`` against the schema.

    ``set_type_of(set_name)`` must return the *member type name* of a set
    (raising a schema error for unknown sets); ``type_lookup(type_name)``
    must return the :class:`TypeDefinition`.  Passing the two lookups keeps
    this module independent of the catalog.
    """
    parts = text.split(".")
    if len(parts) < 3:
        raise InvalidPathError(
            f"path {text!r} needs at least a set, one reference attribute, and a field"
        )
    source_set, *middle, terminal = parts
    current_type: TypeDefinition = type_lookup(set_type_of(source_set))
    type_names = [current_type.name]
    for ref_name in middle:
        fdef = _require_field(current_type, ref_name, text)
        if fdef.kind is not FieldKind.REF:
            raise InvalidPathError(
                f"path {text!r}: {current_type.name}.{ref_name} is not a reference attribute"
            )
        current_type = type_lookup(fdef.ref_type)
        type_names.append(current_type.name)
    if terminal == ALL:
        replicated = tuple(current_type.visible_fields())
    else:
        fdef = _require_field(current_type, terminal, text)
        if fdef.hidden:
            raise InvalidPathError(f"path {text!r}: terminal field is replication-internal")
        replicated = (fdef,)
    return ResolvedPath(
        source_set=source_set,
        ref_chain=tuple(middle),
        terminal=terminal,
        type_names=tuple(type_names),
        replicated_fields=replicated,
    )


def _require_field(type_def: TypeDefinition, name: str, text: str) -> FieldDef:
    if not type_def.has_field(name):
        raise InvalidPathError(f"path {text!r}: type {type_def.name!r} has no field {name!r}")
    fdef = type_def.field_def(name)
    if fdef.hidden:
        raise InvalidPathError(f"path {text!r}: field {name!r} is replication-internal")
    return fdef
