"""Database snapshots: save a full image to a real file and load it back.

The simulated disk lives in memory; a snapshot serialises the *entire*
database -- every page of every file plus the schema metadata needed to
reconstruct the catalog (types with their tags, sets, indexes, replication
paths, links, replica sets, pending lazy queues) -- so a loaded image is
bit-for-bit the same storage with a fully working catalog on top.

Format: an 8-byte magic, a length-prefixed JSON header, then the raw pages
of each file in header order, then (only when the database crashed with
work in its write-ahead log) the serialized WAL tail.  OIDs appear in the
header as ``[file, page, slot]`` triples.

Loading is defensive: a truncated, corrupted, or plain non-snapshot file
raises :class:`SnapshotError` with a message that says what is wrong --
never a raw ``struct.error`` / ``KeyError`` / ``UnicodeDecodeError`` --
and the header's length field is bounds-checked against the actual file
size before any buffer is allocated.  A snapshot taken after a crash
(the "copy the disk image of the downed machine" scenario) is recovered
on load: the WAL tail is replayed before the catalog is rebuilt on top.

Usage::

    from repro.snapshot import save_database, load_database
    save_database(db, "company.frdb")
    db2 = load_database("company.frdb")
"""

from __future__ import annotations

import json
import os
import struct

from repro.errors import SnapshotError, WalError
from repro.objects.types import FieldDef, FieldKind, TypeDefinition
from repro.replication.spec import ReplicationPath, Strategy
from repro.schema.catalog import IndexInfo
from repro.schema.database import Database
from repro.schema.paths import ResolvedPath
from repro.sets.objectset import ObjectSet
from repro.storage.constants import PAGE_SIZE
from repro.storage.heapfile import HeapFile
from repro.storage.oid import OID  # noqa: F401 (header round-trips OIDs)

__all__ = ["SnapshotError", "save_database", "load_database", "open_database"]

_MAGIC = b"FREPDB01"
_LEN = struct.Struct(">Q")
#: JSON headers beyond this are rejected before any allocation happens;
#: far larger than any real catalog, far smaller than an honest mistake
#: like handing this loader a multi-gigabyte random file.
_MAX_HEADER_BYTES = 64 * 1024 * 1024


# ---------------------------------------------------------------------------
# encoding helpers
# ---------------------------------------------------------------------------


def _field_out(f: FieldDef) -> dict:
    return {
        "name": f.name,
        "kind": f.kind.value,
        "size": f.size,
        "ref_type": f.ref_type,
        "hidden": f.hidden,
    }


def _field_in(d: dict) -> FieldDef:
    return FieldDef(d["name"], FieldKind(d["kind"]), size=d["size"],
                    ref_type=d["ref_type"], hidden=d["hidden"])


def _resolved_out(r: ResolvedPath) -> dict:
    return {
        "source_set": r.source_set,
        "ref_chain": list(r.ref_chain),
        "terminal": r.terminal,
        "type_names": list(r.type_names),
        "replicated_fields": [_field_out(f) for f in r.replicated_fields],
    }


def _resolved_in(d: dict) -> ResolvedPath:
    return ResolvedPath(
        source_set=d["source_set"],
        ref_chain=tuple(d["ref_chain"]),
        terminal=d["terminal"],
        type_names=tuple(d["type_names"]),
        replicated_fields=tuple(_field_in(f) for f in d["replicated_fields"]),
    )


def open_database(snapshot: str | None = None, wal: bool = True) -> Database:
    """The shared loader behind the shell's and the server's ``--snapshot``:
    load the named snapshot, or build a fresh WAL-enabled database."""
    if snapshot:
        return load_database(snapshot)
    return Database(wal=wal)


# ---------------------------------------------------------------------------
# save
# ---------------------------------------------------------------------------


def save_database(db: Database, path: str) -> None:
    """Write the database image to ``path``.

    A healthy database is checkpointed first, so the page image alone is
    the whole truth.  A *crashed* database (an injected fault interrupted
    a statement) is saved as-is -- the raw disk, torn pages and all, plus
    the WAL tail -- and :func:`load_database` replays it, modelling taking
    the disk out of the downed machine.
    """
    crashed = db.recovery.needs_recovery
    wal_blob = b""
    if crashed:
        wal_blob = db.recovery.wal.serialize()
    elif db.recovery.wal is not None:
        db.recovery.checkpoint()
    else:
        db.storage.pool.flush_all()
    registry = db.registry
    types = [
        {
            "tag": tag,
            "name": registry.by_tag(tag).name,
            "base": registry.by_tag(tag).base,
            "fields": [_field_out(f) for f in registry.by_tag(tag).fields],
            "aliases": sorted(
                alias for alias in registry.names()
                if registry.get(alias) is registry.by_tag(tag)
            ),
        }
        for tag in sorted(registry._by_tag)  # ordered: tags re-assign densely
    ]
    storage = db.storage
    file_ids = storage.disk.file_ids()
    header = {
        "buffer_frames": storage.pool.capacity,
        "inline_singleton_links": db.replication.inverted.inline_singletons,
        "types": types,
        "files": [
            {
                "file_id": fid,
                "name": storage._names_by_id.get(fid),
                "heap": fid in storage._files_by_id,
                "pages": storage.disk.num_pages(fid),
            }
            for fid in file_ids
        ],
        "sets": [
            {"name": s.name, "type_name": s.type_name, "file_id": s.file_id}
            for s in db.catalog.sets.values()
        ],
        "replica_sets": [
            {"path_id": pid, "name": s.name, "type_name": s.type_name,
             "file_id": s.file_id}
            for pid, s in db.replication.replica_sets.items()
        ],
        "links": [
            {
                "link_id": l.link_id,
                "source_set": l.source_set,
                "prefix": list(l.prefix),
                "file_id": l.file.heap.file_id,
                "collapsed": l.collapsed,
                "private": l.private,
                "parent_link_id": l.parent_link_id,
            }
            for l in db.catalog.links.values()
        ],
        "paths": [
            {
                "path_id": p.path_id,
                "resolved": _resolved_out(p.resolved),
                "strategy": p.strategy.value,
                "link_sequence": list(p.link_sequence),
                "collapsed": p.collapsed,
                "lazy": p.lazy,
                "hidden_fields": list(p.hidden_fields),
                "hidden_ref": p.hidden_ref,
                "replica_set": p.replica_set,
                "replica_type": p.replica_type,
                "index_names": list(p.index_names),
            }
            for p in db.catalog.paths.values()
        ],
        "indexes": [
            {
                "name": i.name,
                "set_name": i.set_name,
                "field_name": i.field_name,
                "clustered": i.clustered,
                "path_text": i.path_text,
                "file_id": i.index.tree.file_id,
                "field": _field_out(i.index.field),
            }
            for i in db.catalog.indexes.values()
        ],
        "counters": {
            "next_path_id": db.catalog._next_path_id,
            "next_link_id": db.catalog._next_link_id,
            "next_index_id": db._next_index_id,
        },
        "wal": {
            "enabled": db.recovery.wal is not None,
            "needs_recovery": crashed,
            "bytes": len(wal_blob),
        },
    }
    blob = json.dumps(header).encode("utf-8")
    with open(path, "wb") as out:
        out.write(_MAGIC)
        out.write(_LEN.pack(len(blob)))
        out.write(blob)
        for fid in file_ids:
            for page_no in range(storage.disk.num_pages(fid)):
                out.write(bytes(storage.disk._files[fid][page_no]))
        out.write(wal_blob)


# ---------------------------------------------------------------------------
# load
# ---------------------------------------------------------------------------


def _read_exact(inp, n: int, what: str) -> bytes:
    data = inp.read(n)
    if len(data) != n:
        raise SnapshotError(
            f"truncated snapshot: expected {n} byte(s) of {what}, "
            f"got {len(data)}")
    return data


def _read_header(inp, path: str) -> dict:
    """Magic + bounds-checked length + JSON header, or SnapshotError."""
    if _read_exact(inp, len(_MAGIC), "magic") != _MAGIC:
        raise SnapshotError(f"{path!r} is not a database snapshot")
    (length,) = _LEN.unpack(_read_exact(inp, _LEN.size, "header length"))
    remaining = os.fstat(inp.fileno()).st_size - inp.tell()
    if length > remaining or length > _MAX_HEADER_BYTES:
        raise SnapshotError(
            f"implausible snapshot header length {length} "
            f"({remaining} byte(s) follow; limit {_MAX_HEADER_BYTES})")
    try:
        header = json.loads(_read_exact(inp, length, "header").decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"corrupt snapshot header: {exc}") from None
    if not isinstance(header, dict):
        raise SnapshotError("corrupt snapshot header: not a JSON object")
    return header


def load_database(path: str, verify: bool = True) -> Database:
    """Reconstruct a database from a snapshot file.

    A snapshot saved after a crash carries a WAL tail; it is replayed
    against the raw pages *before* the catalog is rebuilt on top, and the
    recovered database is verified (``verify=False`` skips the final
    replication check).
    """
    try:
        return _load_database(path, verify)
    except SnapshotError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, struct.error) as exc:
        raise SnapshotError(
            f"malformed snapshot {path!r}: {exc!r}") from exc


def _load_database(path: str, verify: bool) -> Database:
    with open(path, "rb") as inp:
        header = _read_header(inp, path)
        wal_spec = header.get("wal") or {}
        db = Database(
            buffer_frames=header["buffer_frames"],
            inline_singleton_links=header["inline_singleton_links"],
            wal=bool(wal_spec.get("enabled")),
        )
        storage = db.storage
        # --- raw pages -------------------------------------------------
        for spec in header["files"]:
            fid = storage.disk.create_file()
            if fid != spec["file_id"]:
                raise SnapshotError(
                    f"file id drift: expected {spec['file_id']}, got {fid}"
                )
            for __ in range(spec["pages"]):
                page_no = storage.disk.allocate_page(fid)
                storage.disk._files[fid][page_no] = bytearray(
                    _read_exact(inp, PAGE_SIZE,
                                f"page {page_no} of file {fid}"))
        # --- WAL tail: replay before building the catalog on top -------
        if wal_spec.get("needs_recovery"):
            blob = _read_exact(inp, int(wal_spec["bytes"]), "WAL tail")
            try:
                db.recovery.wal.load(blob)
            except WalError as exc:
                raise SnapshotError(f"corrupt snapshot WAL tail: {exc}") from None
            db.recovery.wal.needs_recovery = True
            # the catalog is empty at this point, so this is a pure
            # page-level replay; caches/verification follow naturally
            # once the catalog is rebuilt below.
            db.recovery.recover(verify=False)
    # --- types (tags re-assign densely in saved order) -----------------
    for tspec in header["types"]:
        type_def = TypeDefinition(
            tspec["name"], [_field_in(f) for f in tspec["fields"]],
            base=tspec["base"],
        )
        tag = db.registry.register(type_def)
        if tag != tspec["tag"]:
            raise SnapshotError(f"tag drift: expected {tspec['tag']}, got {tag}")
        for alias in tspec["aliases"]:
            db.registry._by_name[alias] = type_def
            db.registry._tags[alias] = tag
    # --- files / heaps ---------------------------------------------------
    for spec in header["files"]:
        fid, name = spec["file_id"], spec["name"]
        if name is not None:
            storage._names_by_id[fid] = name
        if spec["heap"]:
            heap = HeapFile(storage.pool, fid)
            storage._files_by_id[fid] = heap
            if name is not None:
                storage._files_by_name[name] = heap
    # --- sets ------------------------------------------------------------
    for spec in header["sets"]:
        obj_set = ObjectSet(spec["name"], spec["type_name"], db.store,
                            storage.file_by_id(spec["file_id"]))
        db.catalog.add_set(obj_set)
    for spec in header["replica_sets"]:
        db.replication.replica_sets[spec["path_id"]] = ObjectSet(
            spec["name"], spec["type_name"], db.store,
            storage.file_by_id(spec["file_id"]),
        )
    # --- links -------------------------------------------------------------
    from repro.replication.links import LinkFile
    from repro.schema.catalog import LinkDef

    for spec in sorted(header["links"], key=lambda l: l["link_id"]):
        link = LinkDef(
            spec["link_id"], spec["source_set"], tuple(spec["prefix"]),
            LinkFile(storage.file_by_id(spec["file_id"]),
                     collapsed=spec["collapsed"]),
            collapsed=spec["collapsed"], private=spec["private"],
            parent_link_id=spec["parent_link_id"],
        )
        db.catalog.links[link.link_id] = link
        if not link.collapsed and not link.private:
            db.catalog._link_by_key[(link.source_set, link.prefix)] = link.link_id
    # --- replication paths ---------------------------------------------------
    for spec in header["paths"]:
        path = ReplicationPath(
            path_id=spec["path_id"],
            resolved=_resolved_in(spec["resolved"]),
            strategy=Strategy(spec["strategy"]),
            link_sequence=tuple(spec["link_sequence"]),
            collapsed=spec["collapsed"],
            lazy=spec["lazy"],
            hidden_fields=tuple(spec["hidden_fields"]),
            hidden_ref=spec["hidden_ref"],
            replica_set=spec["replica_set"],
            replica_type=spec["replica_type"],
            index_names=list(spec["index_names"]),
        )
        db.catalog.add_path(path)
        if path.lazy:
            # the pending log's pages were restored with everything else
            db.replication.lazy.reload(path)
    # --- indexes -----------------------------------------------------------------
    from repro.index.btree import BPlusTree
    from repro.index.keycodec import key_width_for
    from repro.index.secondary import SecondaryIndex

    for spec in header["indexes"]:
        field = _field_in(spec["field"])
        index = SecondaryIndex.__new__(SecondaryIndex)
        index.name = spec["name"]
        index.field = field
        index.set_name = spec["set_name"]
        index.clustered = spec["clustered"]
        index.value_width = key_width_for(field)
        index.bind_metrics(db.telemetry.metrics)
        index.tree = BPlusTree.open(storage.pool, spec["file_id"],
                                    index.value_width + 8)
        index.rebuild_stats()
        db.catalog.add_index(IndexInfo(
            spec["name"], spec["set_name"], spec["field_name"], index,
            clustered=spec["clustered"], path_text=spec["path_text"],
        ))
    # --- counters -----------------------------------------------------------------
    db.catalog._next_path_id = header["counters"]["next_path_id"]
    db.catalog._next_link_id = header["counters"]["next_link_id"]
    db._next_index_id = header["counters"]["next_index_id"]
    if wal_spec.get("needs_recovery") and verify:
        # the page-level replay ran before the catalog existed; now that
        # it does, prove the recovered image is replication-consistent
        db.replication.verify()
    return db
