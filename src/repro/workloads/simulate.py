"""The empirical simulator: run the model's query mix on the real engine.

Read and update queries are the paper's (Section 6)::

    retrieve (R.field_r, R.sref.repfield)
    where R.field_r >= lo and R.field_r <= hi       -- f_r |R| objects

    replace (S.repfield = '...', S.payload...)
    where S.field_s >= lo and S.field_s <= hi       -- f_s |S| objects

Each query starts from a cold buffer pool, matching the model's
assumption that queries are charged for every page they touch; the pool
is sized so that no page is read twice within one query (the "optimal
join" assumption of Section 6.2).

The entry point, :func:`compare_strategies`, measures average read and
update costs for the three strategies on identically seeded databases and
returns per-P_update totals -- the empirical analogue of Figures 11/13.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.costmodel import (
    CostParameters,
    ModelStrategy,
    Setting,
    batched_read_cost,
    read_cost,
    update_cost,
)
from repro.workloads.generator import ModelDatabase, WorkloadConfig, build_model_database

STRATEGIES = ("none", "inplace", "separate")

_MODEL_STRATEGY = {
    "none": ModelStrategy.NO_REPLICATION,
    "inplace": ModelStrategy.IN_PLACE,
    "separate": ModelStrategy.SEPARATE,
}


def model_params(config: WorkloadConfig) -> CostParameters:
    """The Section 6 parameters matching a workload configuration."""
    return CostParameters(n_s=config.n_s, f=config.f, f_r=config.f_r,
                          f_s=config.f_s, k=config.k, r=config.r, s=config.s)


def model_prediction(config: WorkloadConfig, kind: str) -> float:
    """The cost model's predicted I/O for one query of ``kind`` on
    ``config`` ("read" or "update").

    Reads under ``join_mode="batched"`` swap the Yao random-probe join
    term for the sorted-probe bound (one ordered sweep per hop level);
    updates never functionally join, so their prediction is mode-free.
    """
    params = model_params(config)
    strategy = _MODEL_STRATEGY[config.strategy]
    setting = Setting.CLUSTERED if config.clustered else Setting.UNCLUSTERED
    if kind == "read":
        if config.join_mode == "batched":
            return batched_read_cost(params, strategy, setting)
        return read_cost(params, strategy, setting)
    if kind == "update":
        return update_cost(params, strategy, setting)
    raise ValueError(f"unknown query kind {kind!r}")


def run_read_query(mdb: ModelDatabase, rng: random.Random,
                   materialize: bool = True) -> int:
    """One cold-cache read query; returns its physical I/O.

    Every measured query also feeds the database's drift monitor with
    the cost model's prediction for this configuration.
    """
    cfg = mdb.config
    span = cfg.objects_per_read
    lo = rng.randrange(0, cfg.n_r - span + 1)
    hi = lo + span - 1
    mdb.db.cold_cache()
    before = mdb.db.stats.snapshot()
    result = mdb.db.execute(
        f"retrieve (R.field_r, R.sref.repfield) "
        f"where R.field_r >= {lo} and R.field_r <= {hi}",
        materialize=materialize,
    )
    mdb.db.storage.pool.flush_all()  # charge deferred write-backs to this query
    assert len(result) == span
    observed = (mdb.db.stats.snapshot() - before).total_io
    mdb.db.telemetry.drift.record(
        "read", cfg.strategy, model_prediction(cfg, "read"), observed)
    return observed


def run_update_query(mdb: ModelDatabase, rng: random.Random) -> int:
    """One cold-cache update query; returns its physical I/O."""
    cfg = mdb.config
    span = cfg.objects_per_update
    lo = rng.randrange(0, cfg.n_s - span + 1)
    hi = lo + span - 1
    value = f"u{rng.randrange(10_000)}"
    mdb.db.cold_cache()
    before = mdb.db.stats.snapshot()
    result = mdb.db.execute(
        f"replace (S.repfield = '{value}') "
        f"where S.field_s >= {lo} and S.field_s <= {hi}"
    )
    mdb.db.storage.pool.flush_all()  # charge deferred write-backs to this query
    assert len(result) == span
    observed = (mdb.db.stats.snapshot() - before).total_io
    mdb.db.telemetry.drift.record(
        "update", cfg.strategy, model_prediction(cfg, "update"), observed)
    return observed


def run_mix(mdb: ModelDatabase, p_update: float, n_queries: int,
            rng: random.Random | None = None) -> float:
    """Run a randomized read/update mix; returns average I/O per query.

    This measures C_total directly -- each query is drawn to be an update
    with probability ``p_update`` -- rather than composing separately
    measured averages, validating the model's linear mixing assumption.
    """
    rng = rng or random.Random(mdb.config.seed + 7)
    total = 0
    for __ in range(n_queries):
        if rng.random() < p_update:
            total += run_update_query(mdb, rng)
        else:
            total += run_read_query(mdb, rng)
    return total / n_queries


@dataclass(frozen=True)
class MeasuredCosts:
    """Average measured I/O per query kind for one strategy."""

    strategy: str
    read: float
    update: float

    def total(self, p_update: float) -> float:
        """The empirical C_total."""
        return (1.0 - p_update) * self.read + p_update * self.update


def measure_strategy(config: WorkloadConfig, trials: int = 5) -> MeasuredCosts:
    """Build one database and average its query costs over ``trials``."""
    mdb = build_model_database(config)
    rng = random.Random(config.seed + 1)
    reads = [run_read_query(mdb, rng) for __ in range(trials)]
    updates = [run_update_query(mdb, rng) for __ in range(trials)]
    # drain lazy queues so averages stay comparable across trials
    mdb.db.refresh()
    return MeasuredCosts(
        strategy=config.strategy,
        read=sum(reads) / len(reads),
        update=sum(updates) / len(updates),
    )


def compare_strategies(base: WorkloadConfig, trials: int = 5) -> dict[str, MeasuredCosts]:
    """Measure all three strategies on identically seeded databases."""
    return {
        strategy: measure_strategy(replace(base, strategy=strategy), trials)
        for strategy in STRATEGIES
    }


def percent_differences(costs: dict[str, MeasuredCosts],
                        p_updates=(0.0, 0.25, 0.5, 0.75, 1.0)) -> dict[str, list[float]]:
    """Empirical Figure 11/13 series: % difference in C_total vs none."""
    out: dict[str, list[float]] = {}
    for strategy in ("inplace", "separate"):
        series = []
        for p in p_updates:
            base_total = costs["none"].total(p)
            series.append(100.0 * (costs[strategy].total(p) - base_total) / base_total)
        out[strategy] = series
    return out
