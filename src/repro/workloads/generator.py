"""Workload generator for the cost model's schema (Section 6).

Builds the two-set database of the analysis on the real storage engine::

    define type RTYPE (field_r: int, sref: ref STYPE, pad: char[...])
    define type STYPE (field_s: int, repfield: char[k], pad: char[...])
    create R: {own ref RTYPE}     |R| = f * |S|
    create S: {own ref STYPE}
    replicate R.sref.repfield     (per the configured strategy)

faithful to the model's assumptions:

* every S object is referenced by exactly ``f`` R objects,
* R and S are *relatively unclustered* -- the reference targets are
  shuffled, so consecutive R objects point at scattered S pages,
* "clustered index" means the file is physically ordered by the indexed
  field; "unclustered" loads the file in random key order,
* pad fields bring object sizes to the model's ``r`` and ``s`` bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import CostModelError
from repro.objects.types import TypeDefinition, char_field, int_field, ref_field
from repro.schema.database import Database
from repro.storage.oid import OID

#: bytes of RTYPE taken by field_r + sref
_R_FIXED = 4 + 8
#: bytes of STYPE taken by field_s
_S_FIXED = 4


@dataclass(frozen=True)
class WorkloadConfig:
    """Scaled-down instance of the Figure 10 parameter space."""

    n_s: int = 500
    f: int = 1
    f_r: float = 0.01
    f_s: float = 0.01
    k: int = 20
    r: int = 100
    s: int = 200
    clustered: bool = False
    #: "none" | "inplace" | "separate"
    strategy: str = "none"
    lazy: bool = False
    #: engine-level Section 4.3.1 optimization (inline singleton links)
    inline_links: bool = False
    buffer_frames: int = 2048
    #: executor strategy for functional joins: "naive" | "batched"
    join_mode: str = "batched"
    seed: int = 42

    def __post_init__(self) -> None:
        if self.r < _R_FIXED + 1 or self.s < _S_FIXED + self.k + 1:
            raise CostModelError("object sizes too small for the fixed fields")
        if self.strategy not in ("none", "inplace", "separate"):
            raise CostModelError(f"unknown strategy {self.strategy!r}")
        if self.join_mode not in ("naive", "batched"):
            raise CostModelError(f"unknown join mode {self.join_mode!r}")

    @property
    def n_r(self) -> int:
        return self.f * self.n_s

    @property
    def objects_per_read(self) -> int:
        return max(1, round(self.f_r * self.n_r))

    @property
    def objects_per_update(self) -> int:
        return max(1, round(self.f_s * self.n_s))


@dataclass
class ModelDatabase:
    """A built workload instance."""

    db: Database
    config: WorkloadConfig
    s_oids: list[OID] = field(default_factory=list)
    r_oids: list[OID] = field(default_factory=list)


def build_model_database(config: WorkloadConfig) -> ModelDatabase:
    """Create, load, index, and (optionally) replicate the model database."""
    rng = random.Random(config.seed)
    db = Database(buffer_frames=config.buffer_frames,
                  inline_singleton_links=config.inline_links,
                  join_mode=config.join_mode)
    db.define_type(
        TypeDefinition(
            "STYPE",
            [
                int_field("field_s"),
                char_field("repfield", config.k),
                char_field("pad", config.s - _S_FIXED - config.k),
            ],
        )
    )
    db.define_type(
        TypeDefinition(
            "RTYPE",
            [
                int_field("field_r"),
                ref_field("sref", "STYPE"),
                char_field("pad", config.r - _R_FIXED),
            ],
        )
    )
    db.create_set("S", "STYPE")
    db.create_set("R", "RTYPE")

    # --- load S --------------------------------------------------------
    s_keys = list(range(config.n_s))
    if not config.clustered:
        rng.shuffle(s_keys)
    s_oid_by_key: dict[int, OID] = {}
    for key in s_keys:
        s_oid_by_key[key] = db.insert(
            "S", {"field_s": key, "repfield": f"v{key % 499}", "pad": "x"}
        )
    s_oids = [s_oid_by_key[k] for k in range(config.n_s)]

    # --- load R ----------------------------------------------------------
    # Exactly f referencers per S object, in shuffled order: R and S are
    # relatively unclustered.
    targets = [oid for oid in s_oids for __ in range(config.f)]
    rng.shuffle(targets)
    r_keys = list(range(config.n_r))
    if not config.clustered:
        rng.shuffle(r_keys)
    r_oid_by_key: dict[int, OID] = {}
    for key in r_keys:
        r_oid_by_key[key] = db.insert(
            "R", {"field_r": key, "sref": targets[key], "pad": "y"}
        )
    r_oids = [r_oid_by_key[k] for k in range(config.n_r)]

    # --- indexes and replication ------------------------------------------
    db.build_index("R.field_r", clustered=config.clustered)
    db.build_index("S.field_s", clustered=config.clustered)
    if config.strategy != "none":
        db.replicate("R.sref.repfield", strategy=config.strategy, lazy=config.lazy)
    db.cold_cache()
    return ModelDatabase(db=db, config=config, s_oids=s_oids, r_oids=r_oids)
