"""Workload generation and empirical simulation of the Section 6 model."""

from repro.workloads.generator import ModelDatabase, WorkloadConfig, build_model_database
from repro.workloads.simulate import (
    MeasuredCosts,
    compare_strategies,
    measure_strategy,
    model_params,
    model_prediction,
    percent_differences,
    run_read_query,
    run_update_query,
)

__all__ = [
    "MeasuredCosts",
    "ModelDatabase",
    "WorkloadConfig",
    "build_model_database",
    "compare_strategies",
    "measure_strategy",
    "model_params",
    "model_prediction",
    "percent_differences",
    "run_read_query",
    "run_update_query",
]
