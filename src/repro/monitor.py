"""Workload monitoring: observe queries, surface replication candidates.

The paper trusts the DBA to know which reference paths are "frequently
accessed and, at the same time, infrequently updated" (Section 3.1).  The
monitor gathers that knowledge from the running system:

* every **functional join** a query performs is recorded against its path
  -- these are precisely the accesses replication could eliminate;
* every **update** to a field is recorded against ``(type, field)`` -- the
  writes replication would have to propagate.

:meth:`WorkloadMonitor.candidates` then joins the two sides and hands each
candidate path to the cost-model advisor, yielding ranked, ready-to-apply
``replicate`` statements.

When the database binds its replication ledger here (``monitor.ledger``),
the ranking additionally covers paths that are *already* replicated: the
ledger's measured net page benefit turns each live path into a ``keep``
candidate (net >= 0) or a ``drop`` candidate (net < 0, propagation
outweighing the reads it serves) -- measured candidates rank ahead of the
advisor's nominal ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.advisor import PathWorkload, Recommendation, recommend
from repro.costmodel.params import ModelStrategy


@dataclass
class PathObservation:
    """Access counts for one reference path."""

    source_set: str
    chain: tuple[str, ...]
    terminal: str
    terminal_type: str
    #: functional joins executed (one per row that walked the path)
    join_rows: int = 0
    #: queries that walked the path at least once
    queries: int = 0

    @property
    def text(self) -> str:
        return ".".join((self.source_set,) + self.chain + (self.terminal,))


@dataclass
class FieldObservation:
    """Update counts for one (type, field)."""

    type_name: str
    field_name: str
    updates: int = 0
    statements: int = 0


@dataclass(frozen=True)
class Candidate:
    """One ranked replication candidate.

    Advisor-derived candidates (``action == "add"``) carry an observation
    and a cost-model recommendation; ledger-derived candidates
    (``action`` ``"keep"`` or ``"drop"``) instead carry the measured net
    page benefit of an already-replicated path.
    """

    path_text: str
    observation: PathObservation | None
    update_statements: int
    estimated_p_update: float
    recommendation: Recommendation | None
    action: str = "add"
    measured_net_io: float | None = None

    @property
    def ddl(self) -> str | None:
        if self.action == "drop":
            return f"drop replicate {self.path_text}"
        if self.action == "keep" or self.recommendation is None:
            return None
        return self.recommendation.ddl(self.path_text)


class WorkloadMonitor:
    """Counts path accesses and field updates for one database."""

    def __init__(self) -> None:
        self._paths: dict[tuple, PathObservation] = {}
        self._fields: dict[tuple, FieldObservation] = {}
        #: optional DriftMonitor; the Database binds its telemetry's here so
        #: ``report()`` can append model-vs-actual drift.
        self.drift = None
        #: optional ReplicationLedger; the Database binds its telemetry's
        #: here so ``candidates()`` can rank live paths by measured benefit.
        self.ledger = None

    # -- recording (called by the executor / Database) -----------------------

    def record_join(self, source_set: str, chain: tuple[str, ...],
                    terminal: str, terminal_type: str, rows: int) -> None:
        """A query walked ``rows`` functional joins over one path."""
        key = (source_set, chain, terminal)
        obs = self._paths.get(key)
        if obs is None:
            obs = PathObservation(source_set, chain, terminal, terminal_type)
            self._paths[key] = obs
        obs.join_rows += rows
        obs.queries += 1

    def record_update(self, type_name: str, field_name: str, rows: int = 1) -> None:
        """An update statement wrote ``rows`` objects' ``field_name``."""
        key = (type_name, field_name)
        obs = self._fields.get(key)
        if obs is None:
            obs = FieldObservation(type_name, field_name)
            self._fields[key] = obs
        obs.updates += rows
        obs.statements += 1

    def reset(self) -> None:
        """Forget everything recorded so far."""
        self._paths.clear()
        self._fields.clear()

    # -- reporting ------------------------------------------------------------

    def path_observations(self) -> list[PathObservation]:
        """All observed paths, most-joined first."""
        return sorted(self._paths.values(), key=lambda o: -o.join_rows)

    def field_observations(self) -> list[FieldObservation]:
        """All observed updated fields, most-updated first."""
        return sorted(self._fields.values(), key=lambda o: -o.updates)

    def updates_against(self, obs: PathObservation, rows: bool = False) -> int:
        """Update statements that would propagate along ``obs``'s path.

        With ``rows=True``, count updated *objects* instead of statements.
        """
        key = (obs.terminal_type, obs.terminal)
        fobs = self._fields.get(key)
        if fobs is None:
            return 0
        return fobs.updates if rows else fobs.statements

    def candidates(self, f: int = 1, f_r: float = 0.001, f_s: float = 0.001,
                   n_s: int = 10_000, clustered: bool = False,
                   min_queries: int = 1,
                   weight_by_rows: bool = False) -> list[Candidate]:
        """Ranked candidates with advisor verdicts.

        ``P_update`` for a path is estimated as the fraction of its traffic
        (reading queries + propagating update statements) that updates.
        With ``weight_by_rows=True`` the estimate uses *row* counts instead
        -- joined rows vs. updated objects -- which weights statements by
        how much work they actually did.  The remaining knobs parameterise
        the cost model; callers can pass measured values when they have
        them.

        If a replication ledger is bound, every path with ledger activity
        additionally yields a *measured* candidate: ``keep`` when its net
        page benefit is non-negative, ``drop`` when propagation has cost
        more than the reads it served.  Measured candidates rank first
        (ordered by how much there is to gain: worst drop first).
        """
        out = []
        if self.ledger is not None:
            for entry in self.ledger.entries():
                net = entry["net_pages"]
                out.append(
                    Candidate(
                        path_text=entry["path"],
                        observation=None,
                        update_statements=entry["propagations"],
                        estimated_p_update=0.0,
                        recommendation=None,
                        action="drop" if net < 0 else "keep",
                        measured_net_io=net,
                    )
                )
        for obs in self.path_observations():
            if obs.queries < min_queries:
                continue
            updates = self.updates_against(obs)
            update_weight = self.updates_against(obs, rows=weight_by_rows)
            read_weight = obs.join_rows if weight_by_rows else obs.queries
            total = read_weight + update_weight
            p_update = update_weight / total if total else 0.0
            rec = recommend(
                PathWorkload(
                    update_probability=p_update, f=f, f_r=f_r, f_s=f_s,
                    n_s=n_s, clustered=clustered,
                )
            )
            out.append(
                Candidate(
                    path_text=obs.text,
                    observation=obs,
                    update_statements=updates,
                    estimated_p_update=p_update,
                    recommendation=rec,
                )
            )
        out.sort(key=lambda c: (
            (0, c.measured_net_io) if c.measured_net_io is not None
            else (1, -c.recommendation.saving_percent)))
        return out

    def report(self) -> str:
        """A human-readable summary."""
        lines = ["observed functional joins (replication candidates):"]
        if not self._paths:
            lines.append("  (none)")
        for obs in self.path_observations():
            updates = self.updates_against(obs)
            lines.append(
                f"  {obs.text:35s} {obs.queries:5d} queries, "
                f"{obs.join_rows:7d} joins, {updates:5d} conflicting update stmts"
            )
        lines.append("observed field updates:")
        if not self._fields:
            lines.append("  (none)")
        for fobs in self.field_observations():
            lines.append(
                f"  {fobs.type_name}.{fobs.field_name:25s} "
                f"{fobs.statements:5d} statements, {fobs.updates:7d} objects"
            )
        if self.ledger is not None and len(self.ledger):
            lines.append("replication ledger (measured net benefit):")
            for entry in self.ledger.entries():
                verdict = "keep" if entry["net_pages"] >= 0 else "drop"
                lines.append(
                    f"  {entry['path']:35s} net {entry['net_pages']:+10.1f} "
                    f"pages ({entry['reads_served']} reads credited, "
                    f"{entry['propagations']} propagations charged) -> {verdict}"
                )
        if self.drift is not None and self.drift.records:
            lines.append(self.drift.report())
        return "\n".join(lines)


def apply_recommendations(db, candidates: list[Candidate],
                          max_paths: int | None = None) -> list[str]:
    """Apply the advisor's DDL for the top candidates; returns statements run."""
    applied = []
    for candidate in candidates:
        if max_paths is not None and len(applied) >= max_paths:
            break
        ddl = candidate.ddl
        if ddl is None or candidate.action != "add":
            continue
        strategy = (
            "separate"
            if candidate.recommendation.strategy is ModelStrategy.SEPARATE
            else "inplace"
        )
        db.replicate(candidate.path_text, strategy=strategy)
        applied.append(ddl)
    return applied
