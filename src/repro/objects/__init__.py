"""The object layer: EXTRA-like types, binary encoding, typed object store."""

from repro.objects.encoding import decode_object, encode_object, encoded_size, peek_type_tag
from repro.objects.instance import LinkEntry, ReplicaEntry, StoredObject
from repro.objects.registry import TypeRegistry
from repro.objects.store import ObjectStore
from repro.objects.types import (
    FieldDef,
    FieldKind,
    TypeDefinition,
    char_field,
    float_field,
    int_field,
    ref_field,
)

__all__ = [
    "FieldDef",
    "FieldKind",
    "LinkEntry",
    "ObjectStore",
    "ReplicaEntry",
    "StoredObject",
    "TypeDefinition",
    "TypeRegistry",
    "char_field",
    "decode_object",
    "encode_object",
    "encoded_size",
    "float_field",
    "int_field",
    "peek_type_tag",
    "ref_field",
]
