"""Binary encoding of objects.

On-disk layout (sizes chosen to match Figure 10's accounting: a 20-byte
object header ``h`` that begins with the 2-byte type tag):

==========================  =======================================
section                     bytes
==========================  =======================================
type tag                    2
link-entry count            1
replica-entry count         1
reserved                    16   (pads the header to ``h`` = 20)
link entries                9 each  (OID 8 + link-ID 1)
replica entries             13 each (OID 8 + refcount 4 + path-id 1)
field values                fixed width, in type field order
==========================  =======================================

Field encodings: ``int`` 4-byte big-endian signed, ``float`` 8-byte IEEE,
``char[n]`` UTF-8 padded with NULs, ``ref`` a packed OID
(:data:`~repro.storage.oid.NULL_OID` encodes an absent reference).
"""

from __future__ import annotations

import struct

from repro.errors import SerializationError
from repro.objects.instance import LinkEntry, ReplicaEntry, StoredObject
from repro.objects.registry import TypeRegistry
from repro.objects.types import FieldKind, TypeDefinition
from repro.storage.constants import OBJECT_HEADER_BYTES
from repro.storage.oid import NULL_OID, OID

_HEADER = struct.Struct(">HBB16x")
_INT = struct.Struct(">i")
_FLOAT = struct.Struct(">d")
_REFCOUNT = struct.Struct(">I")

assert _HEADER.size == OBJECT_HEADER_BYTES

_LINK_ENTRY_BYTES = 9
_REPLICA_ENTRY_BYTES = 13


def encoded_size(type_def: TypeDefinition, n_links: int = 0, n_replicas: int = 0) -> int:
    """Size in bytes of an encoded object of ``type_def``."""
    return (
        OBJECT_HEADER_BYTES
        + n_links * _LINK_ENTRY_BYTES
        + n_replicas * _REPLICA_ENTRY_BYTES
        + type_def.data_width
    )


def encode_object(registry: TypeRegistry, obj: StoredObject) -> bytes:
    """Serialise ``obj`` to its on-disk byte string."""
    if len(obj.link_entries) > 0xFF or len(obj.replica_entries) > 0xFF:
        raise SerializationError("too many link/replica entries for one object")
    tag = registry.tag_of(obj.type_def.name)
    parts = [_HEADER.pack(tag, len(obj.link_entries), len(obj.replica_entries))]
    for entry in obj.link_entries:
        parts.append(entry.link_oid.pack())
        parts.append(bytes([entry.link_id]))
    for rentry in obj.replica_entries:
        parts.append(rentry.replica_oid.pack())
        parts.append(_REFCOUNT.pack(rentry.refcount))
        parts.append(bytes([rentry.path_id]))
    for fdef in obj.type_def.fields:
        parts.append(_encode_value(fdef, obj.values[fdef.name]))
    return b"".join(parts)


def decode_object(registry: TypeRegistry, data: bytes) -> StoredObject:
    """Deserialise an object; the type is resolved through its tag."""
    if len(data) < OBJECT_HEADER_BYTES:
        raise SerializationError(f"object record truncated ({len(data)} bytes)")
    tag, n_links, n_replicas = _HEADER.unpack_from(data, 0)
    type_def = registry.by_tag(tag)
    pos = OBJECT_HEADER_BYTES
    links = []
    for __ in range(n_links):
        oid = OID.unpack(data, pos)
        link_id = data[pos + 8]
        links.append(LinkEntry(oid, link_id))
        pos += _LINK_ENTRY_BYTES
    replicas = []
    for __ in range(n_replicas):
        oid = OID.unpack(data, pos)
        refcount = _REFCOUNT.unpack_from(data, pos + 8)[0]
        path_id = data[pos + 12]
        replicas.append(ReplicaEntry(oid, refcount, path_id))
        pos += _REPLICA_ENTRY_BYTES
    values: dict[str, object] = {}
    for fdef in type_def.fields:
        if pos == len(data):
            # Schema evolution: the record predates a type widening (e.g. a
            # replication path added hidden fields).  Trailing absent fields
            # decode to their kind defaults; a cut *inside* a field is still
            # an error.
            break
        values[fdef.name], pos = _decode_value(fdef, data, pos)
    if pos != len(data):
        raise SerializationError(
            f"object of type {type_def.name!r}: {len(data) - pos} trailing bytes"
        )
    return StoredObject(type_def, values, links, replicas)


def peek_type_tag(data: bytes) -> int:
    """Return the type tag of an encoded object without full decoding."""
    if len(data) < 2:
        raise SerializationError("record too short to hold a type tag")
    return struct.unpack_from(">H", data, 0)[0]


def _encode_value(fdef, value) -> bytes:
    kind = fdef.kind
    if kind is FieldKind.INT:
        try:
            return _INT.pack(value)
        except struct.error as exc:
            raise SerializationError(f"int field {fdef.name!r}: {exc}") from None
    if kind is FieldKind.FLOAT:
        return _FLOAT.pack(float(value))
    if kind is FieldKind.CHAR:
        raw = value.encode("utf-8")
        if len(raw) > fdef.size:
            raise SerializationError(
                f"char[{fdef.size}] field {fdef.name!r}: value needs {len(raw)} bytes"
            )
        return raw.ljust(fdef.size, b"\x00")
    # REF
    oid = value if value is not None else NULL_OID
    return oid.pack()


def _decode_value(fdef, data: bytes, pos: int):
    kind = fdef.kind
    end = pos + fdef.width
    if end > len(data):
        raise SerializationError(f"field {fdef.name!r} truncated")
    if kind is FieldKind.INT:
        return _INT.unpack_from(data, pos)[0], end
    if kind is FieldKind.FLOAT:
        return _FLOAT.unpack_from(data, pos)[0], end
    if kind is FieldKind.CHAR:
        return data[pos:end].rstrip(b"\x00").decode("utf-8"), end
    oid = OID.unpack(data, pos)
    return (None if oid == NULL_OID else oid), end
