"""In-memory representation of a stored object.

A :class:`StoredObject` carries the three sections of the on-disk layout:

* **field values** -- one Python value per field of the object's type
  (hidden replicated-value fields included),
* **link entries** -- the ``(link-OID, link-ID)`` pairs of Section 4.1.3
  that objects *along* a replication path carry so the system knows which
  updates to propagate and how,
* **replica entries** -- the per-source bookkeeping of separate replication
  (Section 5.2): the OID of the shared replica object, a reference count,
  and the id of the replication path it serves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FieldError
from repro.objects.types import FieldKind, TypeDefinition
from repro.storage.oid import OID


#: High bit of the stored link-id byte: the entry is *inline* -- its OID is
#: the single referencer itself, not a link object (Section 4.3.1).
INLINE_LINK_FLAG = 0x80


@dataclass(frozen=True, slots=True)
class LinkEntry:
    """A ``(link-OID, link-ID)`` pair stored in an object on a path.

    When the §4.3.1 optimization applies, a link object holding a single
    OID is eliminated and that OID stored here directly; such an entry has
    :attr:`inline` set (the flag rides in the id byte's high bit) and its
    ``link_oid`` names the lone *referencer* rather than a link object.
    """

    link_oid: OID
    link_id: int

    @property
    def base_id(self) -> int:
        """The link id without the inline flag."""
        return self.link_id & ~INLINE_LINK_FLAG

    @property
    def inline(self) -> bool:
        """Whether this entry inlines its single referencer."""
        return bool(self.link_id & INLINE_LINK_FLAG)


@dataclass(frozen=True, slots=True)
class ReplicaEntry:
    """Separate-replication bookkeeping stored in a source object."""

    replica_oid: OID
    refcount: int
    path_id: int


@dataclass
class StoredObject:
    """One object: typed field values plus replication bookkeeping."""

    type_def: TypeDefinition
    values: dict[str, object]
    link_entries: list[LinkEntry] = field(default_factory=list)
    replica_entries: list[ReplicaEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        for f in self.type_def.fields:
            if f.name not in self.values:
                # Absent values default per kind: 0 / 0.0 / "" / None.
                self.values[f.name] = _default_for(f.kind)
            else:
                _check_value(self.type_def.name, f.name, f.kind, self.values[f.name])
        extra = set(self.values) - {f.name for f in self.type_def.fields}
        if extra:
            raise FieldError(
                f"type {self.type_def.name!r} has no field(s) {sorted(extra)!r}"
            )

    # -- value access -----------------------------------------------------

    def get(self, field_name: str):
        """Return the value of a field (hidden fields allowed)."""
        self.type_def.field_def(field_name)
        return self.values[field_name]

    def set(self, field_name: str, value) -> None:
        """Set the value of a field, with kind checking."""
        fdef = self.type_def.field_def(field_name)
        _check_value(self.type_def.name, field_name, fdef.kind, value)
        self.values[field_name] = value

    def ref(self, field_name: str) -> OID | None:
        """Return the OID held by a reference attribute (or None)."""
        fdef = self.type_def.field_def(field_name)
        if fdef.kind is not FieldKind.REF:
            raise FieldError(f"field {field_name!r} of {self.type_def.name!r} is not a ref")
        return self.values[field_name]

    def copy(self) -> "StoredObject":
        """A deep-enough copy (values dict and entry lists are fresh)."""
        return StoredObject(
            type_def=self.type_def,
            values=dict(self.values),
            link_entries=list(self.link_entries),
            replica_entries=list(self.replica_entries),
        )

    # -- link-entry helpers -------------------------------------------------

    def link_entry_for(self, link_id: int) -> LinkEntry | None:
        """The entry for ``link_id`` (inline or not) if one is carried."""
        base = link_id & ~INLINE_LINK_FLAG
        for entry in self.link_entries:
            if entry.base_id == base:
                return entry
        return None

    def add_link_entry(self, entry: LinkEntry) -> None:
        """Attach a link entry (replacing any entry with the same link id)."""
        self.remove_link_entry(entry.base_id)
        self.link_entries.append(entry)

    def remove_link_entry(self, link_id: int) -> None:
        """Detach the entry for ``link_id`` if present (inline or not)."""
        base = link_id & ~INLINE_LINK_FLAG
        self.link_entries = [e for e in self.link_entries if e.base_id != base]

    # -- replica-entry helpers ----------------------------------------------

    def replica_entry_for(self, path_id: int) -> ReplicaEntry | None:
        """The separate-replication entry for ``path_id`` if present."""
        for entry in self.replica_entries:
            if entry.path_id == path_id:
                return entry
        return None

    def set_replica_entry(self, entry: ReplicaEntry) -> None:
        """Attach / replace the replica entry for ``entry.path_id``."""
        self.replica_entries = [e for e in self.replica_entries if e.path_id != entry.path_id]
        self.replica_entries.append(entry)

    def remove_replica_entry(self, path_id: int) -> None:
        """Detach the replica entry for ``path_id`` if present."""
        self.replica_entries = [e for e in self.replica_entries if e.path_id != path_id]


def _default_for(kind: FieldKind):
    if kind is FieldKind.INT:
        return 0
    if kind is FieldKind.FLOAT:
        return 0.0
    if kind is FieldKind.CHAR:
        return ""
    return None  # REF


def _check_value(type_name: str, field_name: str, kind: FieldKind, value) -> None:
    ok = (
        (kind is FieldKind.INT and isinstance(value, int) and not isinstance(value, bool))
        or (kind is FieldKind.FLOAT and isinstance(value, (int, float)) and not isinstance(value, bool))
        or (kind is FieldKind.CHAR and isinstance(value, str))
        or (kind is FieldKind.REF and (value is None or isinstance(value, OID)))
    )
    if not ok:
        raise FieldError(
            f"{type_name}.{field_name}: value {value!r} does not match kind {kind.value}"
        )
