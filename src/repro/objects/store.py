"""The object store: typed CRUD over heap files.

An :class:`ObjectStore` sits between the storage manager and the set layer:
it encodes/decodes objects, turns heap-file record ids into physically
based OIDs (``file_id`` + record id), and resolves OID dereferences --
the primitive underneath every *functional join*.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import DanglingReferenceError, RecordNotFoundError
from repro.objects.encoding import decode_object, encode_object
from repro.objects.instance import StoredObject
from repro.objects.registry import TypeRegistry
from repro.storage.heapfile import HeapFile
from repro.storage.manager import StorageManager
from repro.storage.oid import OID


class ObjectStore:
    """Typed object persistence over a :class:`StorageManager`."""

    def __init__(self, storage: StorageManager, registry: TypeRegistry) -> None:
        self.storage = storage
        self.registry = registry

    # -- CRUD -----------------------------------------------------------

    def insert(self, heap: HeapFile, obj: StoredObject) -> OID:
        """Store a new object; returns its (stable) OID."""
        rid = heap.insert(encode_object(self.registry, obj))
        return OID(heap.file_id, rid[0], rid[1])

    def read(self, oid: OID) -> StoredObject:
        """Dereference an OID.

        Raises :class:`DanglingReferenceError` when the OID does not name a
        live object -- the error a functional join would surface on a
        violated reference.
        """
        heap = self.storage.file_by_id(oid.file_id)
        try:
            raw = heap.read((oid.page_no, oid.slot))
        except RecordNotFoundError:
            raise DanglingReferenceError(f"dangling reference {oid}") from None
        return decode_object(self.registry, raw)

    def update(self, oid: OID, obj: StoredObject) -> None:
        """Overwrite the object at ``oid`` (relocation is transparent)."""
        heap = self.storage.file_by_id(oid.file_id)
        try:
            heap.update((oid.page_no, oid.slot), encode_object(self.registry, obj))
        except RecordNotFoundError:
            raise DanglingReferenceError(f"dangling reference {oid}") from None

    def delete(self, oid: OID) -> None:
        """Remove the object at ``oid``."""
        heap = self.storage.file_by_id(oid.file_id)
        try:
            heap.delete((oid.page_no, oid.slot))
        except RecordNotFoundError:
            raise DanglingReferenceError(f"dangling reference {oid}") from None

    def exists(self, oid: OID) -> bool:
        """Whether the OID names a live object."""
        heap = self.storage.file_by_id(oid.file_id)
        return heap.exists((oid.page_no, oid.slot))

    def read_many(self, oids) -> dict[OID, StoredObject]:
        """Resolve many OIDs in one ordered sweep (the batched join's hop).

        The probe list is sorted by ``(file_id, page_no, slot)`` and
        deduplicated -- each distinct object is read exactly once, in page
        order, so a page is touched once per sweep instead of once per
        referencer.  Duplicates avoided are charged to the shared
        ``batch_dedup_saved`` counter.  Page runs are group-fetched
        (pinned) through :meth:`BufferPool.fetch_many` so records relocated
        by forward stubs cannot evict the run mid-sweep; tiny pools skip
        the pinning rather than starve other fetches.
        """
        probes = list(oids)
        unique = sorted(set(probes),
                        key=lambda o: (o.file_id, o.page_no, o.slot))
        self.storage.stats.count_batch_dedup(len(probes) - len(unique))
        pool = self.storage.pool
        # pages per pinned run: leave at least half the pool for forward
        # stubs / overflow chunks; pools under 4 frames skip pinning
        run_pages = min(16, pool.capacity // 2)
        out: dict[OID, StoredObject] = {}
        start = 0
        while start < len(unique):
            run: list[OID] = []
            pages: list[tuple[int, int]] = []
            for oid in unique[start:]:
                key = (oid.file_id, oid.page_no)
                if not pages or pages[-1] != key:
                    if len(pages) >= max(1, run_pages):
                        break
                    pages.append(key)
                run.append(oid)
            start += len(run)
            group = pool.fetch_many(pages) if run_pages >= 1 else {}
            try:
                for oid in run:
                    out[oid] = self.read(oid)
            finally:
                pool.unpin_many(group)
        return out

    # -- scans ------------------------------------------------------------

    def scan(self, heap: HeapFile,
             readahead: int = 0) -> Iterator[tuple[OID, StoredObject]]:
        """Yield ``(oid, object)`` in physical order."""
        for rid, raw in heap.scan(readahead=readahead):
            yield OID(heap.file_id, rid[0], rid[1]), decode_object(self.registry, raw)

    # -- path navigation ----------------------------------------------------

    def follow(self, obj: StoredObject, ref_name: str) -> StoredObject | None:
        """One functional-join step: dereference ``obj.ref_name``."""
        oid = obj.ref(ref_name)
        if oid is None:
            return None
        return self.read(oid)

    def traverse(self, obj: StoredObject, path: list[str]) -> StoredObject | None:
        """Follow a chain of reference attributes from ``obj``.

        ``path`` names only the reference attributes; the terminal data
        field, if any, is the caller's business.  Returns None as soon as a
        null reference is met.
        """
        current: StoredObject | None = obj
        for ref_name in path:
            if current is None:
                return None
            current = self.follow(current, ref_name)
        return current
