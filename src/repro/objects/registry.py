"""Type-tag registry.

Every stored object begins with a 2-byte *type tag* (Section 2.2: "every
object contains a type-tag, which identifies the object's type").  The
registry assigns tags densely and maps both ways:

* name -> :class:`TypeDefinition` (for schema lookups),
* tag  -> :class:`TypeDefinition` (for decoding raw records).

Replication subtypes (widened with hidden fields) *replace* the registered
definition under the same tag: the tag identifies the physical layout of
objects of that set, and all objects of a set are rewritten when a
replication path is added, so one live layout per tag suffices.
"""

from __future__ import annotations

from repro.errors import DuplicateNameError, UnknownTypeError
from repro.objects.types import TypeDefinition


class TypeRegistry:
    """Assigns 2-byte type tags and resolves them back to definitions."""

    def __init__(self) -> None:
        self._by_name: dict[str, TypeDefinition] = {}
        self._by_tag: dict[int, TypeDefinition] = {}
        self._tags: dict[str, int] = {}
        self._next_tag = 1

    def register(self, type_def: TypeDefinition) -> int:
        """Register a new type; returns its tag."""
        if type_def.name in self._by_name:
            raise DuplicateNameError(f"type {type_def.name!r} already registered")
        tag = self._next_tag
        if tag > 0xFFFF:
            raise DuplicateNameError("type-tag space exhausted")
        self._next_tag += 1
        self._by_name[type_def.name] = type_def
        self._by_tag[tag] = type_def
        self._tags[type_def.name] = tag
        return tag

    def replace(self, name: str, new_def: TypeDefinition) -> None:
        """Swap the definition behind an existing tag (subtyping widening).

        The new definition keeps the old tag, and is re-registered under its
        own name as well so both names resolve.
        """
        tag = self.tag_of(name)
        self._by_tag[tag] = new_def
        self._by_name[name] = new_def
        if new_def.name != name:
            self._by_name[new_def.name] = new_def
            self._tags[new_def.name] = tag

    def get(self, name: str) -> TypeDefinition:
        """Resolve a type by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownTypeError(f"unknown type {name!r}") from None

    def has(self, name: str) -> bool:
        """Whether a type of that name is registered."""
        return name in self._by_name

    def by_tag(self, tag: int) -> TypeDefinition:
        """Resolve a type by tag (decoding path)."""
        try:
            return self._by_tag[tag]
        except KeyError:
            raise UnknownTypeError(f"unknown type tag {tag}") from None

    def tag_of(self, name: str) -> int:
        """Return the tag assigned to a type name."""
        try:
            return self._tags[name]
        except KeyError:
            raise UnknownTypeError(f"unknown type {name!r}") from None

    def names(self) -> list[str]:
        """All registered type names, sorted."""
        return sorted(self._by_name)

    def root_name(self, name: str) -> str:
        """The originally declared type name behind any subtype.

        Per-set clones and replication widenings both record the root type
        in ``base`` -- the name the user's ``define type`` introduced.
        """
        type_def = self.get(name)
        return type_def.base or type_def.name
