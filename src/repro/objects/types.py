"""The EXTRA-like type system.

The paper's examples use three field kinds -- ``char[]``, ``int``, and
``ref T`` (reference attributes) -- plus ``float`` for completeness.  A
:class:`TypeDefinition` is an ordered list of :class:`FieldDef`; field order
fixes the on-disk layout.

Replication widens objects with *hidden* fields ("objects in Emp1 can be
thought of as having a hidden field in which a replicated value for
dept.name is stored", Section 3.1).  Hidden fields are ordinary fields
flagged ``hidden=True``; the query language layer refuses to read or write
them directly, while query *processing* exploits them.  Structural changes
required by replication are handled through subtyping (Section 4):
:meth:`TypeDefinition.subtype_with_hidden` derives a new type that appends
hidden fields to a base type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TypeDefinitionError
from repro.storage.constants import OID_BYTES


class FieldKind(enum.Enum):
    """The kind of a field's value."""

    INT = "int"
    FLOAT = "float"
    CHAR = "char"
    REF = "ref"


#: On-disk width of each fixed-width kind (CHAR width is per-field).
_KIND_WIDTH = {
    FieldKind.INT: 4,
    FieldKind.FLOAT: 8,
    FieldKind.REF: OID_BYTES,
}


@dataclass(frozen=True, slots=True)
class FieldDef:
    """One field of a type definition."""

    name: str
    kind: FieldKind
    #: Byte width for ``char[n]`` fields; ignored for other kinds.
    size: int = 0
    #: Target type name for ``ref`` fields.
    ref_type: str | None = None
    #: Hidden fields hold replicated values and are invisible to users.
    hidden: bool = False

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise TypeDefinitionError(f"invalid field name {self.name!r}")
        if self.kind is FieldKind.CHAR and self.size <= 0:
            raise TypeDefinitionError(f"char field {self.name!r} needs a positive size")
        if self.kind is FieldKind.REF and not self.ref_type:
            raise TypeDefinitionError(f"ref field {self.name!r} needs a target type")
        if self.kind not in (FieldKind.CHAR,) and self.size:
            raise TypeDefinitionError(f"field {self.name!r}: size applies only to char fields")

    @property
    def width(self) -> int:
        """On-disk width of this field in bytes."""
        if self.kind is FieldKind.CHAR:
            return self.size
        return _KIND_WIDTH[self.kind]


def int_field(name: str, hidden: bool = False) -> FieldDef:
    """Convenience constructor for an ``int`` field."""
    return FieldDef(name, FieldKind.INT, hidden=hidden)


def float_field(name: str, hidden: bool = False) -> FieldDef:
    """Convenience constructor for a ``float`` field."""
    return FieldDef(name, FieldKind.FLOAT, hidden=hidden)


def char_field(name: str, size: int, hidden: bool = False) -> FieldDef:
    """Convenience constructor for a ``char[size]`` field."""
    return FieldDef(name, FieldKind.CHAR, size=size, hidden=hidden)


def ref_field(name: str, target_type: str, hidden: bool = False) -> FieldDef:
    """Convenience constructor for a ``ref target_type`` field."""
    return FieldDef(name, FieldKind.REF, ref_type=target_type, hidden=hidden)


@dataclass(frozen=True)
class TypeDefinition:
    """An object type: a name and an ordered list of fields.

    The paper capitalises type names (ORG, DEPT, EMP) to distinguish them
    from set names; we follow that convention in examples but do not
    enforce it.
    """

    name: str
    fields: tuple[FieldDef, ...]
    #: Name of the base type when this type was derived by subtyping
    #: (replication's hidden-field widening); None for root types.
    base: str | None = None
    _by_name: dict[str, FieldDef] = field(init=False, repr=False, compare=False, default=None)

    def __init__(self, name: str, fields, base: str | None = None) -> None:
        if not name.isidentifier():
            raise TypeDefinitionError(f"invalid type name {name!r}")
        fields = tuple(fields)
        if not fields:
            raise TypeDefinitionError(f"type {name!r} needs at least one field")
        seen: set[str] = set()
        for f in fields:
            if f.name in seen:
                raise TypeDefinitionError(f"type {name!r}: duplicate field {f.name!r}")
            seen.add(f.name)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "fields", fields)
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "_by_name", {f.name: f for f in fields})

    # -- lookup ---------------------------------------------------------

    def field_def(self, name: str) -> FieldDef:
        """Return the definition of field ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            from repro.errors import FieldError

            raise FieldError(f"type {self.name!r} has no field {name!r}") from None

    def has_field(self, name: str) -> bool:
        """Whether a field of that name exists (hidden ones included)."""
        return name in self._by_name

    def visible_fields(self) -> tuple[FieldDef, ...]:
        """Fields users may name in queries (non-hidden)."""
        return tuple(f for f in self.fields if not f.hidden)

    def hidden_fields(self) -> tuple[FieldDef, ...]:
        """Hidden (replicated-value) fields."""
        return tuple(f for f in self.fields if f.hidden)

    def ref_fields(self) -> tuple[FieldDef, ...]:
        """All non-hidden reference attributes."""
        return tuple(f for f in self.fields if f.kind is FieldKind.REF and not f.hidden)

    # -- layout ---------------------------------------------------------

    @property
    def data_width(self) -> int:
        """Total on-disk width of the field values (excluding headers)."""
        return sum(f.width for f in self.fields)

    # -- subtyping --------------------------------------------------------

    def subtype_with_hidden(self, subtype_name: str, extra: list[FieldDef]) -> "TypeDefinition":
        """Derive a subtype that appends hidden fields (Section 4).

        All extra fields must be marked hidden -- this operation exists
        solely so replication can widen objects without changing the
        user-visible type.
        """
        for f in extra:
            if not f.hidden:
                raise TypeDefinitionError(
                    f"subtype field {f.name!r} must be hidden (replication-only widening)"
                )
        # base tracks the originally declared (root) type through chains of
        # widenings, so user-facing names survive any number of paths.
        return TypeDefinition(subtype_name, self.fields + tuple(extra),
                              base=self.base or self.name)

    def without_field(self, name: str) -> "TypeDefinition":
        """Return a copy lacking field ``name`` (used when a replication
        path is dropped)."""
        self.field_def(name)  # raise if absent
        remaining = tuple(f for f in self.fields if f.name != name)
        return TypeDefinition(self.name, remaining, base=self.base)

    def rename(self, new_name: str) -> "TypeDefinition":
        """Return a copy under a different name."""
        return TypeDefinition(new_name, self.fields, base=self.base)
