"""An LRU buffer pool with pin counts.

The pool caches :class:`~repro.storage.page.Page` images keyed by
``(file_id, page_no)``.  Clients access pages through the :meth:`BufferPool.page`
context manager, which pins the frame for the duration of the block::

    with pool.page(fid, pno) as page:
        page.insert(record)
        pool.mark_dirty(fid, pno)

Unpinned frames are evicted in least-recently-used order; dirty frames are
written back on eviction and on :meth:`flush_all`.  A hit costs nothing
physical; a miss costs one physical read (plus, possibly, one physical write
to evict a dirty victim) -- exactly the accounting the paper's analytical
model abstracts.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

from repro.errors import BufferPoolError
from repro.storage.constants import DEFAULT_BUFFER_FRAMES
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page
from repro.telemetry.metrics import NULL_METRICS

_PageKey = tuple[int, int]


class _Frame:
    __slots__ = ("page", "dirty", "pin_count")

    def __init__(self, page: Page) -> None:
        self.page = page
        self.dirty = False
        self.pin_count = 0


class BufferPool:
    """A fixed-capacity page cache over a :class:`SimulatedDisk`."""

    def __init__(self, disk: SimulatedDisk, capacity: int = DEFAULT_BUFFER_FRAMES,
                 metrics=None) -> None:
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        #: optional :class:`repro.recovery.wal.WriteAheadLog`; when attached
        #: the pool reports fetches/dirties/allocations to it and forces the
        #: log before any dirty page reaches the disk (WAL-before-data).
        self.wal = None
        self._frames: OrderedDict[_PageKey, _Frame] = OrderedDict()
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_hits = metrics.counter(
            "bufferpool_hits_total", "page requests served from the pool")
        self._m_misses = metrics.counter(
            "bufferpool_misses_total", "page requests that went to disk")
        self._m_evictions = metrics.counter(
            "bufferpool_evictions_total", "frames evicted to make room")
        self._m_writebacks = metrics.counter(
            "bufferpool_writebacks_total", "dirty pages written back")
        self._g_resident = metrics.gauge(
            "bufferpool_resident_frames", "pages currently cached")

    @property
    def stats(self):
        """The shared I/O statistics object (owned by the disk)."""
        return self.disk.stats

    # -- pin / unpin --------------------------------------------------------

    def fetch(self, file_id: int, page_no: int) -> Page:
        """Pin the page and return its in-memory image.

        The caller must balance every ``fetch`` with an :meth:`unpin`;
        prefer the :meth:`page` context manager.
        """
        key = (file_id, page_no)
        self.stats.logical_reads += 1
        frame = self._frames.get(key)
        if frame is None:
            self._make_room()
            frame = _Frame(Page(self.disk.read_page(file_id, page_no)))
            self._frames[key] = frame
            self._m_misses.inc()
            self._g_resident.set(len(self._frames))
        else:
            self.stats.buffer_hits += 1
            self._m_hits.inc()
            self._frames.move_to_end(key)
        if self.wal is not None:
            # snapshot on first contact: clients mutate the frame in place
            # before (or without) calling mark_dirty, so the pre-statement
            # image must be captured here.
            self.wal.observe_fetch(key, frame.page.data)
        frame.pin_count += 1
        return frame.page

    def unpin(self, file_id: int, page_no: int) -> None:
        """Release one pin on the page."""
        frame = self._frames.get((file_id, page_no))
        if frame is None or frame.pin_count == 0:
            raise BufferPoolError(f"page ({file_id},{page_no}) is not pinned")
        frame.pin_count -= 1

    @contextmanager
    def page(self, file_id: int, page_no: int) -> Iterator[Page]:
        """Context manager that pins a page for the duration of the block."""
        page = self.fetch(file_id, page_no)
        try:
            yield page
        finally:
            self.unpin(file_id, page_no)

    def mark_dirty(self, file_id: int, page_no: int) -> None:
        """Record that the cached image differs from the disk image."""
        frame = self._frames.get((file_id, page_no))
        if frame is None:
            raise BufferPoolError(f"page ({file_id},{page_no}) is not resident")
        frame.dirty = True
        if self.wal is not None:
            self.wal.observe_dirty((file_id, page_no))

    # -- allocation ---------------------------------------------------------

    def new_page(self, file_id: int) -> tuple[int, Page]:
        """Allocate a fresh page in ``file_id`` and return it pinned & dirty.

        The fresh page is materialised directly in the pool (no physical
        read is charged for a page that has never been written).
        """
        page_no = self.disk.allocate_page(file_id)
        if self.wal is not None:
            self.wal.observe_alloc(file_id, page_no)
        self._make_room()
        frame = _Frame(Page())
        frame.dirty = True
        frame.pin_count = 1
        self._frames[(file_id, page_no)] = frame
        self.stats.logical_reads += 1
        self._g_resident.set(len(self._frames))
        return page_no, frame.page

    # -- flushing / eviction ------------------------------------------------

    def flush_all(self) -> None:
        """Write back every dirty frame (frames stay resident)."""
        if self.wal is not None and any(f.dirty for f in self._frames.values()):
            self.wal.before_data_write()
        for (file_id, page_no), frame in self._frames.items():
            if frame.dirty:
                self.disk.write_page(file_id, page_no, bytes(frame.page.data))
                self.stats.count_writeback()
                self._m_writebacks.inc()
                frame.dirty = False

    def drop_file_pages(self, file_id: int) -> None:
        """Discard (without writing back) all frames of a dropped file."""
        if self.wal is not None:
            self.wal.observe_drop_file(file_id)
        doomed = [key for key in self._frames if key[0] == file_id]
        for key in doomed:
            del self._frames[key]

    def invalidate_all(self) -> None:
        """Flush and then empty the pool (simulates a cold cache)."""
        self.flush_all()
        self._frames.clear()

    def resident_keys(self) -> set[_PageKey]:
        """Keys of all currently cached pages (for tests)."""
        return set(self._frames)

    # -- recovery primitives (uncharged) ------------------------------------

    def peek_frame(self, key: _PageKey):
        """The resident image for ``key`` (no pin, no charge), else None."""
        frame = self._frames.get(key)
        return frame.page.data if frame is not None else None

    def discard_pages(self, keys) -> None:
        """Drop frames without writeback (their disk images were restored)."""
        for key in keys:
            self._frames.pop(key, None)
        self._g_resident.set(len(self._frames))

    def discard_all(self) -> None:
        """Empty the pool without writing anything back (a crash loses
        every in-memory frame; recovery rebuilds from disk + log)."""
        self._frames.clear()
        self._g_resident.set(len(self._frames))

    def _make_room(self) -> None:
        if len(self._frames) < self.capacity:
            return
        for key, frame in self._frames.items():  # OrderedDict: LRU first
            if frame.pin_count == 0:
                if frame.dirty:
                    if self.wal is not None:
                        self.wal.before_data_write()
                    self.disk.write_page(key[0], key[1], bytes(frame.page.data))
                    self.stats.count_writeback()
                    self._m_writebacks.inc()
                del self._frames[key]
                self.stats.count_eviction()
                self._m_evictions.inc()
                return
        raise BufferPoolError("all buffer frames are pinned")
