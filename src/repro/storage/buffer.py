"""An LRU buffer pool with pin counts.

The pool caches :class:`~repro.storage.page.Page` images keyed by
``(file_id, page_no)``.  Clients access pages through the :meth:`BufferPool.page`
context manager, which pins the frame for the duration of the block::

    with pool.page(fid, pno) as page:
        page.insert(record)
        pool.mark_dirty(fid, pno)

Unpinned frames are evicted in least-recently-used order; dirty frames are
written back on eviction and on :meth:`flush_all`.  A hit costs nothing
physical; a miss costs one physical read (plus, possibly, one physical write
to evict a dirty victim) -- exactly the accounting the paper's analytical
model abstracts.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

from repro.errors import BufferPoolError
from repro.storage.constants import DEFAULT_BUFFER_FRAMES
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page
from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.waitevents import BUFFER_IO, NULL_WAITS

_PageKey = tuple[int, int]


class _Frame:
    __slots__ = ("page", "dirty", "pin_count", "prefetched")

    def __init__(self, page: Page) -> None:
        self.page = page
        self.dirty = False
        self.pin_count = 0
        #: loaded by read-ahead and not yet demanded (prefetch-hit tracking)
        self.prefetched = False


class BufferPool:
    """A fixed-capacity page cache over a :class:`SimulatedDisk`."""

    def __init__(self, disk: SimulatedDisk, capacity: int = DEFAULT_BUFFER_FRAMES,
                 metrics=None) -> None:
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        #: optional :class:`repro.recovery.wal.WriteAheadLog`; when attached
        #: the pool reports fetches/dirties/allocations to it and forces the
        #: log before any dirty page reaches the disk (WAL-before-data).
        self.wal = None
        #: wait-event collector; page transfers between the pool and the
        #: disk are timed as ``buffer_io`` (the database wires this up)
        self.waits = NULL_WAITS
        self._frames: OrderedDict[_PageKey, _Frame] = OrderedDict()
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_hits = metrics.counter(
            "bufferpool_hits_total", "page requests served from the pool")
        self._m_misses = metrics.counter(
            "bufferpool_misses_total", "page requests that went to disk")
        self._m_evictions = metrics.counter(
            "bufferpool_evictions_total", "frames evicted to make room")
        self._m_writebacks = metrics.counter(
            "bufferpool_writebacks_total", "dirty pages written back")
        self._m_prefetch_issued = metrics.counter(
            "bufferpool_prefetch_issued_total",
            "pages physically read ahead of demand")
        self._m_prefetch_hits = metrics.counter(
            "bufferpool_prefetch_hits_total",
            "demand fetches served by a read-ahead frame")
        self._g_resident = metrics.gauge(
            "bufferpool_resident_frames", "pages currently cached")

    @property
    def stats(self):
        """The shared I/O statistics object (owned by the disk)."""
        return self.disk.stats

    # -- pin / unpin --------------------------------------------------------

    def fetch(self, file_id: int, page_no: int) -> Page:
        """Pin the page and return its in-memory image.

        The caller must balance every ``fetch`` with an :meth:`unpin`;
        prefer the :meth:`page` context manager.
        """
        key = (file_id, page_no)
        self.stats.logical_reads += 1
        frame = self._frames.get(key)
        if frame is None:
            self._make_room()
            with self.waits.wait(BUFFER_IO, "read"):
                frame = _Frame(Page(self.disk.read_page(file_id, page_no)))
            self._frames[key] = frame
            self._m_misses.inc()
            self._g_resident.set(len(self._frames))
        else:
            self.stats.buffer_hits += 1
            self._m_hits.inc()
            if frame.prefetched:
                frame.prefetched = False
                self.stats.count_prefetch_hit()
                self._m_prefetch_hits.inc()
            self._frames.move_to_end(key)
        if self.wal is not None:
            # snapshot on first contact: clients mutate the frame in place
            # before (or without) calling mark_dirty, so the pre-statement
            # image must be captured here.
            self.wal.observe_fetch(key, frame.page.data)
        frame.pin_count += 1
        return frame.page

    def unpin(self, file_id: int, page_no: int) -> None:
        """Release one pin on the page."""
        frame = self._frames.get((file_id, page_no))
        if frame is None or frame.pin_count == 0:
            raise BufferPoolError(f"page ({file_id},{page_no}) is not pinned")
        frame.pin_count -= 1

    def fetch_many(self, keys) -> dict[_PageKey, Page]:
        """Pin a group of pages in one call (the batched join's group-fetch).

        ``keys`` should arrive sorted in page order so misses turn into one
        ordered sweep over the file.  Pages already fetched within the group
        are pinned once; the caller balances with :meth:`unpin_many` over the
        returned mapping's keys.  While the group is being assembled the
        already-pinned members are protected by their pins, so a later miss
        can never evict an earlier member.
        """
        pages: dict[_PageKey, Page] = {}
        try:
            for key in keys:
                if key not in pages:
                    pages[key] = self.fetch(*key)
        except BufferPoolError:
            for key in pages:
                self.unpin(*key)
            raise
        return pages

    def unpin_many(self, keys) -> None:
        """Release one pin on each page of a :meth:`fetch_many` group."""
        for key in keys:
            self.unpin(*key)

    def prefetch(self, file_id: int, page_nos) -> int:
        """Best-effort read-ahead: load pages into unpinned frames.

        Pages already resident are skipped; each loaded page is charged one
        physical read (to the scan that asked for it) and counted as
        ``prefetch_issued``.  Eviction to make room never touches pinned
        frames or pages loaded by this same call -- and rather than raise
        when no victim is evictable, read-ahead simply stops.  Returns the
        number of pages actually loaded.
        """
        loaded: list[_PageKey] = []
        protected: set[_PageKey] = set()
        for page_no in page_nos:
            key = (file_id, page_no)
            if key in self._frames:
                continue
            protected.add(key)
            if not self._make_room(protected=protected, best_effort=True):
                break
            with self.waits.wait(BUFFER_IO, "prefetch"):
                frame = _Frame(Page(self.disk.read_page(file_id, page_no)))
            frame.prefetched = True
            self._frames[key] = frame
            loaded.append(key)
            self.stats.count_prefetch()
            self._m_prefetch_issued.inc()
        if loaded:
            self._g_resident.set(len(self._frames))
        return len(loaded)

    @contextmanager
    def page(self, file_id: int, page_no: int) -> Iterator[Page]:
        """Context manager that pins a page for the duration of the block."""
        page = self.fetch(file_id, page_no)
        try:
            yield page
        finally:
            self.unpin(file_id, page_no)

    def mark_dirty(self, file_id: int, page_no: int) -> None:
        """Record that the cached image differs from the disk image."""
        frame = self._frames.get((file_id, page_no))
        if frame is None:
            raise BufferPoolError(f"page ({file_id},{page_no}) is not resident")
        frame.dirty = True
        if self.wal is not None:
            self.wal.observe_dirty((file_id, page_no))

    # -- allocation ---------------------------------------------------------

    def new_page(self, file_id: int) -> tuple[int, Page]:
        """Allocate a fresh page in ``file_id`` and return it pinned & dirty.

        The fresh page is materialised directly in the pool (no physical
        read is charged for a page that has never been written).
        """
        page_no = self.disk.allocate_page(file_id)
        if self.wal is not None:
            self.wal.observe_alloc(file_id, page_no)
        self._make_room()
        frame = _Frame(Page())
        frame.dirty = True
        frame.pin_count = 1
        self._frames[(file_id, page_no)] = frame
        self.stats.logical_reads += 1
        self._g_resident.set(len(self._frames))
        return page_no, frame.page

    # -- flushing / eviction ------------------------------------------------

    def flush_all(self) -> None:
        """Write back every dirty frame (frames stay resident)."""
        if self.wal is not None and any(f.dirty for f in self._frames.values()):
            self.wal.before_data_write()
        for (file_id, page_no), frame in self._frames.items():
            if frame.dirty:
                with self.waits.wait(BUFFER_IO, "writeback"):
                    self.disk.write_page(file_id, page_no,
                                         bytes(frame.page.data))
                self.stats.count_writeback()
                self._m_writebacks.inc()
                frame.dirty = False

    def drop_file_pages(self, file_id: int) -> None:
        """Discard (without writing back) all frames of a dropped file."""
        if self.wal is not None:
            self.wal.observe_drop_file(file_id)
        doomed = [key for key in self._frames if key[0] == file_id]
        for key in doomed:
            del self._frames[key]

    def invalidate_all(self) -> None:
        """Flush and then empty the pool (simulates a cold cache)."""
        self.flush_all()
        self._frames.clear()

    def resident_keys(self) -> set[_PageKey]:
        """Keys of all currently cached pages (for tests)."""
        return set(self._frames)

    def pinned_keys(self) -> list[_PageKey]:
        """Keys of every frame with a nonzero pin count (debug/regression
        accessor: after a statement completes this must be empty)."""
        return [key for key, frame in self._frames.items() if frame.pin_count]

    # -- recovery primitives (uncharged) ------------------------------------

    def peek_frame(self, key: _PageKey):
        """The resident image for ``key`` (no pin, no charge), else None."""
        frame = self._frames.get(key)
        return frame.page.data if frame is not None else None

    def discard_pages(self, keys) -> None:
        """Drop frames without writeback (their disk images were restored)."""
        for key in keys:
            self._frames.pop(key, None)
        self._g_resident.set(len(self._frames))

    def discard_all(self) -> None:
        """Empty the pool without writing anything back (a crash loses
        every in-memory frame; recovery rebuilds from disk + log)."""
        self._frames.clear()
        self._g_resident.set(len(self._frames))

    def _make_room(self, protected: set[_PageKey] | None = None,
                   best_effort: bool = False) -> bool:
        """Evict one unpinned LRU frame if the pool is full.

        ``protected`` keys are never chosen as victims (read-ahead must not
        evict the pages of the batch that is being assembled).  With
        ``best_effort=True`` an unevictable pool returns False instead of
        raising -- the caller (read-ahead) simply gives up.
        """
        if len(self._frames) < self.capacity:
            return True
        for key, frame in self._frames.items():  # OrderedDict: LRU first
            if frame.pin_count == 0 and (protected is None or key not in protected):
                if frame.dirty:
                    if self.wal is not None:
                        self.wal.before_data_write()
                    with self.waits.wait(BUFFER_IO, "writeback"):
                        self.disk.write_page(key[0], key[1],
                                             bytes(frame.page.data))
                    self.stats.count_writeback()
                    self._m_writebacks.inc()
                del self._frames[key]
                self.stats.count_eviction()
                self._m_evictions.inc()
                return True
        if best_effort:
            return False
        raise BufferPoolError("all buffer frames are pinned")
