"""A concurrent LRU buffer pool with per-frame latches and pin counts.

The pool caches :class:`~repro.storage.page.Page` images keyed by
``(file_id, page_no)``.  Clients access pages through the :meth:`BufferPool.page`
context manager, which pins the frame for the duration of the block::

    with pool.page(fid, pno) as page:
        page.insert(record)
        pool.mark_dirty(fid, pno)

Unpinned frames are evicted in least-recently-used order; dirty frames are
written back on eviction and on :meth:`flush_all`.  A hit costs nothing
physical; a miss costs one physical read (plus, possibly, one physical write
to evict a dirty victim) -- exactly the accounting the paper's analytical
model abstracts.

Concurrency design (statements now execute in parallel inside one engine):

* the page table is **sharded** -- a key maps to one of a few small dicts,
  each behind its own short lock, so lookups from different statements
  rarely contend;
* each frame carries its own **latch** guarding pin count, dirty flag,
  and life-cycle state; eviction takes *only the victim frame's latch*
  (plus its shard lock for the table removal), never a pool-wide lock;
* recency is a monotonic **access stamp** written at every insert/touch.
  Sequentially this reproduces the old ``OrderedDict`` LRU bit-for-bit:
  the eviction victim is the unpinned frame with the smallest stamp,
  which is exactly "first unpinned frame in LRU order";
* a miss inserts a pre-pinned *loading* placeholder before reading, so a
  concurrent fetch of the same page waits on the load instead of issuing
  a duplicate read, and eviction can never choose a half-loaded frame;
* the no-evict-pinned invariant holds under races: a victim is chosen by
  an unlatched scan but *revalidated under its latch* before being
  killed -- a frame that got pinned in between is simply skipped.

Latch ordering (documented in ARCHITECTURE.md): shard lock and frame
latch are below the admission gate and above the WAL log mutex; no path
holds a shard lock while waiting on a frame latch, and the only
frame-latch -> shard-lock edge (eviction's table removal) is safe
because no thread ever waits on a frame latch while holding a shard
lock.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import BufferPoolError
from repro.storage.constants import DEFAULT_BUFFER_FRAMES
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page
from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.waitevents import BUFFER_IO, NULL_WAITS

_PageKey = tuple[int, int]

#: page-table shards; a small power of two keeps the modulo cheap.
_SHARDS = 16


class _Frame:
    __slots__ = ("page", "dirty", "pin_count", "prefetched", "stamp",
                 "latch", "dead", "loading")

    def __init__(self, page: Page | None) -> None:
        self.page = page
        self.dirty = False
        self.pin_count = 0
        #: loaded by read-ahead and not yet demanded (prefetch-hit tracking)
        self.prefetched = False
        #: monotonic recency stamp (smaller = colder); see module docstring
        self.stamp = 0
        self.latch = threading.Lock()
        #: the frame was evicted/discarded; racing fetchers must re-lookup
        self.dead = False
        #: set while the frame's disk read is in flight; waiters block on
        #: this event instead of issuing a duplicate physical read
        self.loading: threading.Event | None = None


class BufferPool:
    """A fixed-capacity page cache over a :class:`SimulatedDisk`."""

    def __init__(self, disk: SimulatedDisk, capacity: int = DEFAULT_BUFFER_FRAMES,
                 metrics=None) -> None:
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        #: optional :class:`repro.recovery.wal.WriteAheadLog`; when attached
        #: the pool reports fetches/dirties/allocations to it and forces the
        #: log before any dirty page reaches the disk (WAL-before-data).
        self.wal = None
        #: wait-event collector; page transfers between the pool and the
        #: disk are timed as ``buffer_io`` (the database wires this up)
        self.waits = NULL_WAITS
        self._shards: list[tuple[threading.Lock, dict[_PageKey, _Frame]]] = [
            (threading.Lock(), {}) for __ in range(_SHARDS)]
        self._clock = itertools.count(1)
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_hits = metrics.counter(
            "bufferpool_hits_total", "page requests served from the pool")
        self._m_misses = metrics.counter(
            "bufferpool_misses_total", "page requests that went to disk")
        self._m_evictions = metrics.counter(
            "bufferpool_evictions_total", "frames evicted to make room")
        self._m_writebacks = metrics.counter(
            "bufferpool_writebacks_total", "dirty pages written back")
        self._m_prefetch_issued = metrics.counter(
            "bufferpool_prefetch_issued_total",
            "pages physically read ahead of demand")
        self._m_prefetch_hits = metrics.counter(
            "bufferpool_prefetch_hits_total",
            "demand fetches served by a read-ahead frame")
        self._g_resident = metrics.gauge(
            "bufferpool_resident_frames", "pages currently cached")

    @property
    def stats(self):
        """The shared I/O statistics object (owned by the disk)."""
        return self.disk.stats

    # -- table helpers ------------------------------------------------------

    def _shard(self, key: _PageKey):
        return self._shards[hash(key) % _SHARDS]

    def _lookup(self, key: _PageKey) -> _Frame | None:
        lock, table = self._shard(key)
        with lock:
            return table.get(key)

    def _resident(self) -> int:
        # advisory only (capacity checks re-run on races); summing live
        # dict lengths without the shard locks is safe in CPython
        return sum(len(table) for __, table in self._shards)

    # -- pin / unpin --------------------------------------------------------

    def fetch(self, file_id: int, page_no: int) -> Page:
        """Pin the page and return its in-memory image.

        The caller must balance every ``fetch`` with an :meth:`unpin`;
        prefer the :meth:`page` context manager.
        """
        key = (file_id, page_no)
        self.stats.count_logical_read()
        while True:
            frame = self._lookup(key)
            if frame is None:
                page = self._load(key)
                if page is not None:
                    return page
                continue  # lost the insert race: the other load is a hit
            wait_for = None
            with frame.latch:
                if frame.dead:
                    pass  # evicted under us: re-lookup
                elif frame.loading is not None:
                    wait_for = frame.loading
                else:
                    self.stats.count_buffer_hit()
                    self._m_hits.inc()
                    if frame.prefetched:
                        frame.prefetched = False
                        self.stats.count_prefetch_hit()
                        self._m_prefetch_hits.inc()
                    frame.stamp = next(self._clock)
                    if self.wal is not None:
                        # snapshot on first contact: clients mutate the
                        # frame in place before (or without) calling
                        # mark_dirty, so the pre-statement image must be
                        # captured here.
                        self.wal.observe_fetch(key, frame.page.data)
                    frame.pin_count += 1
                    return frame.page
            if wait_for is not None:
                wait_for.wait(timeout=30.0)
            else:
                time.sleep(0)  # dead frame: let the evictor finish removal

    def _load(self, key: _PageKey, prefetch: bool = False,
              protected: set[_PageKey] | None = None) -> Page | None:
        """Read ``key`` from disk into a fresh frame.

        Returns the (pinned, unless prefetching) page, or ``None`` if a
        concurrent load won the table insert (the caller retries and
        takes the hit path).  The placeholder is inserted *pre-pinned and
        loading* before the read: same-key fetchers wait on it, and the
        evictor skips it.
        """
        self._make_room(protected=protected)
        placeholder = _Frame(None)
        placeholder.pin_count = 1
        placeholder.loading = threading.Event()
        placeholder.stamp = next(self._clock)
        lock, table = self._shard(key)
        with lock:
            if key in table:
                return None
            table[key] = placeholder
        try:
            with self.waits.wait(BUFFER_IO,
                                 "prefetch" if prefetch else "read"):
                data = self.disk.read_page(*key)
        except BaseException:
            with placeholder.latch:
                placeholder.dead = True
                loading = placeholder.loading
                placeholder.loading = None
            with lock:
                if table.get(key) is placeholder:
                    del table[key]
            loading.set()
            raise
        with placeholder.latch:
            placeholder.page = Page(data)
            loading = placeholder.loading
            placeholder.loading = None
            if prefetch:
                placeholder.prefetched = True
                placeholder.pin_count = 0
        if prefetch:
            self.stats.count_prefetch()
            self._m_prefetch_issued.inc()
        else:
            self._m_misses.inc()
        self._g_resident.set(self._resident())
        if not prefetch and self.wal is not None:
            self.wal.observe_fetch(key, placeholder.page.data)
        loading.set()
        return placeholder.page

    def unpin(self, file_id: int, page_no: int) -> None:
        """Release one pin on the page."""
        frame = self._lookup((file_id, page_no))
        if frame is not None:
            with frame.latch:
                if frame.pin_count > 0:
                    frame.pin_count -= 1
                    return
        raise BufferPoolError(f"page ({file_id},{page_no}) is not pinned")

    def fetch_many(self, keys) -> dict[_PageKey, Page]:
        """Pin a group of pages in one call (the batched join's group-fetch).

        ``keys`` should arrive sorted in page order so misses turn into one
        ordered sweep over the file.  Pages already fetched within the group
        are pinned once; the caller balances with :meth:`unpin_many` over the
        returned mapping's keys.  While the group is being assembled the
        already-pinned members are protected by their pins, so a later miss
        can never evict an earlier member -- pins, not a pool lock, carry
        the invariant, so it holds under concurrent eviction races too.
        """
        pages: dict[_PageKey, Page] = {}
        try:
            for key in keys:
                if key not in pages:
                    pages[key] = self.fetch(*key)
        except BufferPoolError:
            for key in pages:
                self.unpin(*key)
            raise
        return pages

    def unpin_many(self, keys) -> None:
        """Release one pin on each page of a :meth:`fetch_many` group."""
        for key in keys:
            self.unpin(*key)

    def prefetch(self, file_id: int, page_nos) -> int:
        """Best-effort read-ahead: load pages into unpinned frames.

        Pages already resident are skipped; each loaded page is charged one
        physical read (to the scan that asked for it) and counted as
        ``prefetch_issued``.  Eviction to make room never touches pinned
        frames or pages loaded by this same call -- and rather than raise
        when no victim is evictable, read-ahead simply stops.  Returns the
        number of pages actually loaded.
        """
        loaded = 0
        protected: set[_PageKey] = set()
        for page_no in page_nos:
            key = (file_id, page_no)
            if self._lookup(key) is not None:
                continue
            protected.add(key)
            if not self._make_room(protected=protected, best_effort=True,
                                   probe_only=True):
                break
            if self._load(key, prefetch=True, protected=protected) is not None:
                loaded += 1
        return loaded

    @contextmanager
    def page(self, file_id: int, page_no: int) -> Iterator[Page]:
        """Context manager that pins a page for the duration of the block."""
        page = self.fetch(file_id, page_no)
        try:
            yield page
        finally:
            self.unpin(file_id, page_no)

    def mark_dirty(self, file_id: int, page_no: int) -> None:
        """Record that the cached image differs from the disk image."""
        frame = self._lookup((file_id, page_no))
        if frame is None or frame.dead:
            raise BufferPoolError(f"page ({file_id},{page_no}) is not resident")
        with frame.latch:
            frame.dirty = True
        if self.wal is not None:
            self.wal.observe_dirty((file_id, page_no))

    # -- allocation ---------------------------------------------------------

    def new_page(self, file_id: int) -> tuple[int, Page]:
        """Allocate a fresh page in ``file_id`` and return it pinned & dirty.

        The fresh page is materialised directly in the pool (no physical
        read is charged for a page that has never been written).
        """
        page_no = self.disk.allocate_page(file_id)
        if self.wal is not None:
            self.wal.observe_alloc(file_id, page_no)
        self._make_room()
        frame = _Frame(Page())
        frame.dirty = True
        frame.pin_count = 1
        frame.stamp = next(self._clock)
        lock, table = self._shard((file_id, page_no))
        with lock:
            table[(file_id, page_no)] = frame
        self.stats.count_logical_read()
        self._g_resident.set(self._resident())
        return page_no, frame.page

    # -- flushing / eviction ------------------------------------------------

    def _snapshot_frames(self) -> list[tuple[_PageKey, _Frame]]:
        """All (key, frame) pairs in LRU (ascending-stamp) order --
        sequentially identical to the old OrderedDict iteration order."""
        items: list[tuple[_PageKey, _Frame]] = []
        for lock, table in self._shards:
            with lock:
                items.extend(table.items())
        items.sort(key=lambda kv: kv[1].stamp)
        return items

    def flush_all(self) -> None:
        """Write back every dirty frame (frames stay resident)."""
        for key, frame in self._snapshot_frames():
            with frame.latch:
                if frame.dead or not frame.dirty:
                    continue
                if self.wal is not None:
                    # per-frame, not once up front: a concurrent statement
                    # may dirty (and log) a page after an earlier force;
                    # sequentially this is one force exactly as before
                    self.wal.before_data_write()
                with self.waits.wait(BUFFER_IO, "writeback"):
                    self.disk.write_page(key[0], key[1],
                                         bytes(frame.page.data))
                self.stats.count_writeback()
                self._m_writebacks.inc()
                frame.dirty = False

    def drop_file_pages(self, file_id: int) -> None:
        """Discard (without writing back) all frames of a dropped file."""
        if self.wal is not None:
            self.wal.observe_drop_file(file_id)
        for lock, table in self._shards:
            with lock:
                doomed = [key for key in table if key[0] == file_id]
                for key in doomed:
                    frame = table.pop(key)
                    with frame.latch:
                        frame.dead = True

    def invalidate_all(self) -> None:
        """Flush and then empty the pool (simulates a cold cache)."""
        self.flush_all()
        self._discard_everything()

    def resident_keys(self) -> set[_PageKey]:
        """Keys of all currently cached pages (for tests)."""
        keys: set[_PageKey] = set()
        for lock, table in self._shards:
            with lock:
                keys.update(table)
        return keys

    def pinned_keys(self) -> list[_PageKey]:
        """Keys of every frame with a nonzero pin count (debug/regression
        accessor: after a statement completes this must be empty)."""
        return [key for key, frame in self._snapshot_frames()
                if frame.pin_count]

    # -- recovery primitives (uncharged) ------------------------------------

    def peek_frame(self, key: _PageKey):
        """The resident image for ``key`` (no pin, no charge), else None."""
        frame = self._lookup(key)
        if frame is None or frame.dead or frame.page is None:
            return None
        return frame.page.data

    def discard_pages(self, keys) -> None:
        """Drop frames without writeback (their disk images were restored)."""
        for key in keys:
            lock, table = self._shard(key)
            with lock:
                frame = table.pop(key, None)
            if frame is not None:
                with frame.latch:
                    frame.dead = True
        self._g_resident.set(self._resident())

    def discard_all(self) -> None:
        """Empty the pool without writing anything back (a crash loses
        every in-memory frame; recovery rebuilds from disk + log)."""
        self._discard_everything()

    def _discard_everything(self) -> None:
        for lock, table in self._shards:
            with lock:
                for frame in table.values():
                    with frame.latch:
                        frame.dead = True
                table.clear()
        self._g_resident.set(self._resident())

    def _make_room(self, protected: set[_PageKey] | None = None,
                   best_effort: bool = False,
                   probe_only: bool = False) -> bool:
        """Evict one unpinned LRU frame if the pool is full.

        ``protected`` keys are never chosen as victims (read-ahead must not
        evict the pages of the batch that is being assembled).  With
        ``best_effort=True`` an unevictable pool returns False instead of
        raising -- the caller (read-ahead) simply gives up.
        ``probe_only=True`` additionally skips the eviction itself and just
        answers "could a later load make room?".

        The victim is selected by an unlatched scan (cheapest unpinned
        stamp) and *revalidated under its own latch*: a frame that got
        pinned, killed, or put into loading in between is skipped and the
        scan repeats.  Only the victim's latch is held during writeback.
        """
        while True:
            if self._resident() < self.capacity:
                return True
            best: tuple[_PageKey, _Frame] | None = None
            for lock, table in self._shards:
                with lock:
                    items = list(table.items())
                for key, frame in items:
                    if protected is not None and key in protected:
                        continue
                    if (frame.pin_count == 0 and not frame.dead
                            and frame.loading is None):
                        if best is None or frame.stamp < best[1].stamp:
                            best = (key, frame)
            if best is None:
                if best_effort:
                    return False
                raise BufferPoolError("all buffer frames are pinned")
            if probe_only:
                return True
            if self._evict(*best):
                return True
            # lost a race (victim pinned/vanished meanwhile): rescan

    def _evict(self, key: _PageKey, frame: _Frame) -> bool:
        """Kill one victim frame; True if this thread actually evicted it."""
        with frame.latch:
            if frame.dead or frame.pin_count > 0 or frame.loading is not None:
                return False
            frame.dead = True
            if frame.dirty:
                try:
                    if self.wal is not None:
                        self.wal.before_data_write()
                    with self.waits.wait(BUFFER_IO, "writeback"):
                        self.disk.write_page(key[0], key[1],
                                             bytes(frame.page.data))
                except BaseException:
                    frame.dead = False  # keep the frame; the fault surfaces
                    raise
                self.stats.count_writeback()
                self._m_writebacks.inc()
                frame.dirty = False
            lock, table = self._shard(key)
            with lock:
                if table.get(key) is frame:
                    del table[key]
        self.stats.count_eviction()
        self._m_evictions.inc()
        return True
