"""Storage-engine constants.

The sizes below mirror the defaults of Figure 10 in the paper, which the
authors took from the EXODUS Storage Manager [Care86]:

* ``USABLE_PAGE_BYTES`` (the paper's *B*) = 4056 bytes of user data per page,
* ``OBJECT_HEADER_BYTES`` (the paper's *h*) = 20 bytes per object,
* ``OID_BYTES`` = 8, ``TYPE_TAG_BYTES`` = 2, ``LINK_ID_BYTES`` = 1,
* B+-tree fanout *m* = 350.

The physical page is 4096 bytes; the 40-byte difference between the raw page
and *B* is claimed by the page header and bookkeeping, consistent with the
paper's accounting.
"""

from __future__ import annotations

#: Raw size of a disk page in bytes.
PAGE_SIZE = 4096

#: Bytes of each page reserved for the page header (slot count, free-space
#: pointer, and spare room so that ``PAGE_SIZE - PAGE_HEADER_BYTES`` equals
#: the paper's usable-byte figure *B* plus the slot directory).
PAGE_HEADER_BYTES = 8

#: Bytes per slot-directory entry (record offset + record length).
SLOT_ENTRY_BYTES = 4

#: The paper's *B*: bytes of a page available for user data.  With an 8-byte
#: page header and a 4-byte slot entry per object this is an upper bound the
#: engine approaches; the analytical model uses it exactly.
USABLE_PAGE_BYTES = 4056

#: The paper's *h*: per-object storage overhead (object header).
OBJECT_HEADER_BYTES = 20

#: Size of an object identifier on disk.
OID_BYTES = 8

#: Size of a type tag stored in every object.
TYPE_TAG_BYTES = 2

#: Size of a link identifier (replication bookkeeping, Section 4.1.3).
LINK_ID_BYTES = 1

#: Default B+-tree fanout used by the analytical model.
BTREE_FANOUT = 350

#: Largest record payload a single page can hold.
MAX_RECORD_BYTES = PAGE_SIZE - PAGE_HEADER_BYTES - SLOT_ENTRY_BYTES

#: Slot-directory sentinel marking an empty (reusable) slot.
EMPTY_SLOT_OFFSET = 0xFFFF

#: Default number of frames in a buffer pool.
DEFAULT_BUFFER_FRAMES = 64

#: Rows drained from the access path per sort-and-dedupe batch when the
#: executor runs in ``join_mode="batched"``.
JOIN_BATCH_ROWS = 256

#: Pages a batched heap scan reads ahead of its cursor (per prefetch call).
SCAN_READAHEAD_PAGES = 8
