"""A simulated disk.

The disk is a set of numbered files, each an extendable array of fixed-size
pages held in memory.  It is the *only* component that increments the
physical I/O counters, so every page that crosses the disk boundary --
whether through the buffer pool or a bulk loader -- is accounted for
exactly once.

The paper's cost model charges one I/O per page touched and does not
distinguish sequential from random I/O ("we initially distinguished between
the two, but found that it did not significantly change our results",
Section 6.5); the simulated disk therefore does the same.

Concurrent statements reach the disk from different worker threads, so
one mutex serializes every operation (a real disk serializes at the
platter anyway).  Fault-injector hooks run inside the mutex, which keeps
their fire-on-the-Nth-write countdowns exact under concurrency.
"""

from __future__ import annotations

import threading

from repro.errors import DiskFault, FileNotFoundInStoreError
from repro.storage.constants import PAGE_SIZE
from repro.storage.stats import IOStatistics
from repro.telemetry.metrics import NULL_METRICS


class SimulatedDisk:
    """An in-memory collection of paged files with physical I/O counting."""

    def __init__(self, stats: IOStatistics | None = None, metrics=None,
                 faults=None) -> None:
        self.stats = stats if stats is not None else IOStatistics()
        #: optional :class:`repro.recovery.faults.FaultInjector`; consulted
        #: on every physical read/write only while armed, so the default
        #: (no faults) I/O path is unchanged.
        self.faults = faults
        self._mutex = threading.RLock()
        self._files: dict[int, list[bytearray]] = {}
        self._next_file_id = 1
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_reads = metrics.counter(
            "disk_reads_total", "pages read from the simulated disk")
        self._m_writes = metrics.counter(
            "disk_writes_total", "pages written to the simulated disk")
        self._m_allocs = metrics.counter(
            "disk_pages_allocated_total", "pages ever allocated")
        self._g_files = metrics.gauge("disk_files", "live files")
        self._g_pages = metrics.gauge("disk_pages", "live pages across all files")

    # -- file management ----------------------------------------------------

    def create_file(self) -> int:
        """Allocate a new empty file and return its id."""
        with self._mutex:
            file_id = self._next_file_id
            self._next_file_id += 1
            self._files[file_id] = []
            self._g_files.set(len(self._files))
            return file_id

    def file_ids(self) -> list[int]:
        """Ids of every live file, ascending."""
        with self._mutex:
            return sorted(self._files)

    @property
    def next_file_id(self) -> int:
        """The id the next created file will get (the file-id cursor)."""
        return self._next_file_id

    def sync_file_cursor(self, next_file_id: int) -> None:
        """Adopt a peer's file-id cursor.

        A replication follower calls this before applying a shipped DDL
        entry: both engines allocate file ids sequentially, but transient
        output files (created and dropped mid-query) advance the cursor
        without leaving a file behind, so the cursors drift apart between
        DDL statements.  Moving the cursor is safe exactly because those
        intermediate ids are dropped; a live file at or past the target
        means the engines truly diverged, which is refused loudly.
        """
        with self._mutex:
            if any(fid >= next_file_id for fid in self._files):
                raise ValueError(
                    f"cannot move the file-id cursor to {next_file_id}: a "
                    f"live file at or past it exists (ids "
                    f"{sorted(f for f in self._files if f >= next_file_id)})")
            self._next_file_id = next_file_id

    def drop_file(self, file_id: int) -> None:
        """Delete a file and all its pages."""
        with self._mutex:
            pages = self._require(file_id)
            del self._files[file_id]
            self._g_files.set(len(self._files))
            self._g_pages.inc(-len(pages))

    def file_exists(self, file_id: int) -> bool:
        """Whether ``file_id`` names a live file."""
        with self._mutex:
            return file_id in self._files

    def num_pages(self, file_id: int) -> int:
        """Number of pages currently allocated to ``file_id``."""
        with self._mutex:
            return len(self._require(file_id))

    # -- page I/O -----------------------------------------------------------

    def allocate_page(self, file_id: int) -> int:
        """Extend ``file_id`` by one zeroed page; return the new page number.

        Allocation itself is free; the write that initialises the page is
        charged when it happens.
        """
        with self._mutex:
            pages = self._require(file_id)
            pages.append(bytearray(PAGE_SIZE))
            self._m_allocs.inc()
            self._g_pages.inc()
            return len(pages) - 1

    def read_page(self, file_id: int, page_no: int) -> bytearray:
        """Return a *copy* of the page image, charging one physical read."""
        with self._mutex:
            pages = self._require(file_id)
            self._check_page(pages, file_id, page_no)
            if self.faults is not None and self.faults.armed:
                self.faults.resolve_read()
            self.stats.count_read(file_id)
            self._m_reads.inc()
            return bytearray(pages[page_no])

    def write_page(self, file_id: int, page_no: int, data: bytes) -> None:
        """Overwrite a page image, charging one physical write."""
        with self._mutex:
            pages = self._require(file_id)
            self._check_page(pages, file_id, page_no)
            if len(data) != PAGE_SIZE:
                raise ValueError(
                    f"page image must be {PAGE_SIZE} bytes, got {len(data)}")
            if self.faults is not None and self.faults.armed:
                torn = self.faults.on_write(data, pages[page_no])
                if torn is not None:
                    # torn write: the corrupt half-image reaches the platter
                    # (and is charged) before the fault surfaces.
                    self.stats.count_write(file_id)
                    self._m_writes.inc()
                    pages[page_no] = bytearray(torn)
                    raise DiskFault(
                        "injected torn write: page "
                        f"({file_id},{page_no}) persisted half-written")
            self.stats.count_write(file_id)
            self._m_writes.inc()
            pages[page_no] = bytearray(data)

    # -- recovery primitives (uncharged) ------------------------------------

    def peek_page(self, file_id: int, page_no: int) -> bytes:
        """Read a page image without charging I/O (WAL/recovery internal)."""
        with self._mutex:
            pages = self._require(file_id)
            self._check_page(pages, file_id, page_no)
            return bytes(pages[page_no])

    def restore_page(self, file_id: int, page_no: int, data: bytes) -> None:
        """Overwrite a page from a log image without charging I/O.

        Recovery I/O is reported by the recovery layer itself so the
        paper's per-query physical figures stay clean.
        """
        with self._mutex:
            pages = self._require(file_id)
            self._check_page(pages, file_id, page_no)
            if len(data) != PAGE_SIZE:
                raise ValueError(
                    f"page image must be {PAGE_SIZE} bytes, got {len(data)}")
            pages[page_no] = bytearray(data)

    def ensure_pages(self, file_id: int, count: int) -> None:
        """Grow ``file_id`` to at least ``count`` zeroed pages (redo of
        ALLOC records); never shrinks, never charges I/O."""
        with self._mutex:
            pages = self._require(file_id)
            while len(pages) < count:
                pages.append(bytearray(PAGE_SIZE))
                self._m_allocs.inc()
                self._g_pages.inc()

    def truncate_file(self, file_id: int, num_pages: int) -> None:
        """Drop pages allocated by a rolled-back statement (undo of ALLOC)."""
        with self._mutex:
            pages = self._require(file_id)
            if num_pages < 0:
                raise ValueError("cannot truncate to a negative size")
            if num_pages < len(pages):
                self._g_pages.inc(num_pages - len(pages))
                del pages[num_pages:]

    # -- helpers ------------------------------------------------------------

    def _require(self, file_id: int) -> list[bytearray]:
        try:
            return self._files[file_id]
        except KeyError:
            raise FileNotFoundInStoreError(f"no file with id {file_id}") from None

    @staticmethod
    def _check_page(pages: list[bytearray], file_id: int, page_no: int) -> None:
        if not 0 <= page_no < len(pages):
            raise FileNotFoundInStoreError(
                f"file {file_id} has {len(pages)} pages; page {page_no} out of range"
            )
