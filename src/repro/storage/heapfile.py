"""Heap files: unordered collections of variable-length records.

A heap file stores records on slotted pages accessed through the buffer
pool.  Record ids -- ``(page_no, slot)`` -- are *stable*: when an update
grows a record past what its home page can hold, the record is relocated
and a 7-byte *forward stub* is left in the home slot, exactly the technique
the paper assumes when in-place replication widens objects through
subtyping ("such changes are easily handled through subtyping", Section 4).
Forward chains never exceed length one: relocating an already-forwarded
record rewrites the original stub.

Records larger than a page -- the paper's own example is a link object for
a department with a thousand employees -- are stored as a chain of chunk
records with a small *descriptor* in the home slot, so arbitrarily large
payloads keep one stable rid.

Two framing layers are applied to every stored record:

* a **location marker** (``NORMAL`` / ``FORWARD`` / ``MOVED``) handling
  relocation, then
* a **payload wrapper** (``PLAIN`` / ``LARGE`` descriptor / ``CHUNK``)
  handling multi-page payloads.

Scans surface every record exactly once, under its home rid, assembled.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterator

from repro.errors import PageFullError, RecordNotFoundError
from repro.storage.buffer import BufferPool
from repro.storage.constants import MAX_RECORD_BYTES
from repro.storage.page import Page

#: A record id within one file: ``(page_no, slot)``.
RID = tuple[int, int]

# location markers
_NORMAL = 0x00
_FORWARD = 0x01
_MOVED = 0x02

# payload wrappers
_PLAIN = 0x00
_LARGE = 0x01
_CHUNK = 0x02

_FWD = struct.Struct(">IH")
_LARGE_HEAD = struct.Struct(">BI IH")  # wrapper, total length, first-chunk rid
_CHUNK_HEAD = struct.Struct(">B IH")  # wrapper, next-chunk rid (NULL at end)

_NULL_RID: RID = (0xFFFFFFFF, 0xFFFF)

#: Payload bytes per chunk record (location marker + chunk header deducted).
_CHUNK_PAYLOAD = MAX_RECORD_BYTES - 1 - _CHUNK_HEAD.size

#: Largest payload stored without chunking (marker + wrapper deducted).
_INLINE_LIMIT = MAX_RECORD_BYTES - 2


class HeapFile:
    """A paged heap of records with stable record ids."""

    def __init__(self, pool: BufferPool, file_id: int) -> None:
        self.pool = pool
        self.file_id = file_id
        # Approximate free bytes per page.  This is session metadata that a
        # real engine would keep in a free-space map; rebuilding it from the
        # pages is always safe.
        self._free_space: dict[int, int] = {}
        self._rebuild_free_space()

    # -- public API ---------------------------------------------------------

    def insert(self, payload: bytes) -> RID:
        """Store a record of any size; returns its stable rid."""
        return self._place(_NORMAL, self._wrap(payload), avoid=None)

    def read(self, rid: RID) -> bytes:
        """Return the record payload, following a forward stub if present."""
        body = self._read_body(rid)
        return self._unwrap(body)

    def update(self, rid: RID, payload: bytes) -> None:
        """Replace the record payload; relocates on overflow, rid stays valid."""
        page_no, slot = rid
        with self.pool.page(self.file_id, page_no) as page:
            raw = page.read(slot)
        marker = raw[0]
        if marker == _FORWARD:
            self._free_payload(self._read_raw(_rid_unpack(raw[1:]))[1:])
            target = _rid_unpack(raw[1:])
            self._update_at(target, _MOVED, payload, home=rid)
            return
        self._free_payload(raw[1:])
        self._update_at(rid, _NORMAL, payload, home=rid)

    def delete(self, rid: RID) -> None:
        """Remove the record (chunks and relocated payload included)."""
        page_no, slot = rid
        with self.pool.page(self.file_id, page_no) as page:
            raw = page.read(slot)
            page.delete(slot)
            self.pool.mark_dirty(self.file_id, page_no)
            self._free_space[page_no] = page.total_free()
        if raw[0] == _FORWARD:
            target = _rid_unpack(raw[1:])
            traw = self._read_raw(target)
            self._free_payload(traw[1:])
            self._delete_slot(target)
        else:
            self._free_payload(raw[1:])

    def exists(self, rid: RID) -> bool:
        """Whether ``rid`` addresses a live record."""
        try:
            self.read(rid)
            return True
        except RecordNotFoundError:
            return False

    def scan(self, readahead: int = 0) -> Iterator[tuple[RID, bytes]]:
        """Yield ``(rid, payload)`` in physical order.

        Records are reported under their *home* rid, fully assembled;
        parked payloads and overflow chunks are skipped where they live.

        ``readahead > 0`` prefetches the next window of pages into
        unpinned frames before the cursor reaches them (best effort; the
        pool's eviction guard keeps read-ahead from displacing pinned or
        same-window pages).  Physical reads per scan are unchanged -- only
        their ordering moves ahead of demand -- so only set-oriented
        callers opt in.
        """
        total = self.num_pages()
        for page_no in range(total):
            if readahead > 0 and page_no % readahead == 0:
                # strictly *ahead*: the current page stays a demand fetch
                # (a miss when cold), the next window arrives behind it
                self.pool.prefetch(
                    self.file_id,
                    range(page_no + 1, min(page_no + 1 + readahead, total)),
                )
            with self.pool.page(self.file_id, page_no) as page:
                entries = list(page.records())
            for slot, raw in entries:
                marker = raw[0]
                if marker == _MOVED:
                    continue
                if marker == _FORWARD:
                    yield (page_no, slot), self.read((page_no, slot))
                    continue
                body = raw[1:]
                if body[:1][0] == _CHUNK:
                    continue
                yield (page_no, slot), self._unwrap(body)

    def num_pages(self) -> int:
        """Pages currently allocated to this file."""
        return self.pool.disk.num_pages(self.file_id)

    def count(self) -> int:
        """Number of live records (a full scan)."""
        return sum(1 for __ in self.scan())

    def for_each_page(self, fn: Callable[[int, Page], None]) -> None:
        """Run ``fn(page_no, page)`` over every page, pinned one at a time."""
        for page_no in range(self.num_pages()):
            with self.pool.page(self.file_id, page_no) as page:
                fn(page_no, page)

    # -- payload wrapping (large records) --------------------------------

    def _wrap(self, payload: bytes) -> bytes:
        if len(payload) <= _INLINE_LIMIT:
            return bytes([_PLAIN]) + payload
        first = _NULL_RID
        # write chunks back to front so each can point at its successor
        for start in range(
            ((len(payload) - 1) // _CHUNK_PAYLOAD) * _CHUNK_PAYLOAD, -1, -_CHUNK_PAYLOAD
        ):
            chunk = payload[start:start + _CHUNK_PAYLOAD]
            body = _CHUNK_HEAD.pack(_CHUNK, *first) + chunk
            first = self._place(_NORMAL, body, avoid=None)
        return _LARGE_HEAD.pack(_LARGE, len(payload), *first)

    def _unwrap(self, body: bytes) -> bytes:
        wrapper = body[0]
        if wrapper == _PLAIN:
            return body[1:]
        if wrapper == _LARGE:
            __, total, page_no, slot = _LARGE_HEAD.unpack_from(body, 0)
            parts: list[bytes] = []
            rid: RID = (page_no, slot)
            while rid != _NULL_RID:
                raw = self._read_raw(rid)
                __w, npage, nslot = _CHUNK_HEAD.unpack_from(raw, 1)
                parts.append(raw[1 + _CHUNK_HEAD.size:])
                rid = (npage, nslot)
            data = b"".join(parts)
            if len(data) != total:
                raise RecordNotFoundError(
                    f"large record chain truncated ({len(data)} of {total} bytes)"
                )
            return data
        raise RecordNotFoundError("rid addresses an overflow chunk, not a record")

    def _free_payload(self, body: bytes) -> None:
        """Free the overflow chunks of a (wrapped) payload, if any."""
        if not body or body[0] != _LARGE:
            return
        __, __total, page_no, slot = _LARGE_HEAD.unpack_from(body, 0)
        rid: RID = (page_no, slot)
        while rid != _NULL_RID:
            raw = self._read_raw(rid)
            __w, npage, nslot = _CHUNK_HEAD.unpack_from(raw, 1)
            self._delete_slot(rid)
            rid = (npage, nslot)

    # -- placement / relocation ---------------------------------------------

    def _place(self, marker: int, body: bytes, avoid: int | None) -> RID:
        record = bytes([marker]) + body
        page_no = self._find_page_with_room(len(record), avoid=avoid)
        with self.pool.page(self.file_id, page_no) as page:
            slot = page.insert(record)
            self.pool.mark_dirty(self.file_id, page_no)
            self._free_space[page_no] = page.total_free()
        return (page_no, slot)

    def _update_at(self, rid: RID, marker: int, payload: bytes, home: RID) -> None:
        """Write a fresh payload at ``rid``, relocating if it cannot fit."""
        body = self._wrap(payload)
        page_no, slot = rid
        with self.pool.page(self.file_id, page_no) as page:
            try:
                page.update(slot, bytes([marker]) + body)
                self.pool.mark_dirty(self.file_id, page_no)
                self._free_space[page_no] = page.total_free()
                return
            except PageFullError:
                pass
        # Relocate: park the payload elsewhere, stub at home.
        if rid != home:
            self._delete_slot(rid)
        target = self._place(_MOVED, body, avoid=home[0])
        hpage, hslot = home
        with self.pool.page(self.file_id, hpage) as page:
            page.update(hslot, bytes([_FORWARD]) + _rid_pack(target))
            self.pool.mark_dirty(self.file_id, hpage)
            self._free_space[hpage] = page.total_free()

    # -- low-level helpers ----------------------------------------------------

    def _read_body(self, rid: RID) -> bytes:
        raw = self._read_raw(rid)
        if raw[0] == _FORWARD:
            raw = self._read_raw(_rid_unpack(raw[1:]))
            if raw[0] != _MOVED:
                raise RecordNotFoundError(f"dangling forward stub at {rid}")
        return raw[1:]

    def _read_raw(self, rid: RID) -> bytes:
        page_no, slot = rid
        with self.pool.page(self.file_id, page_no) as page:
            return page.read(slot)

    def _delete_slot(self, rid: RID) -> None:
        page_no, slot = rid
        with self.pool.page(self.file_id, page_no) as page:
            page.delete(slot)
            self.pool.mark_dirty(self.file_id, page_no)
            self._free_space[page_no] = page.total_free()

    def _find_page_with_room(self, record_len: int, avoid: int | None = None) -> int:
        # Prefer the highest-numbered page with room: appends stay physically
        # clustered in insertion order, which the paper's file layouts assume.
        # The highest page is where an append lands in the common case, so
        # try it alone first before paying for the full descending scan.
        top = max(self._free_space, default=None)
        if top is not None and top != avoid \
                and self._free_space[top] >= record_len:
            with self.pool.page(self.file_id, top) as page:
                if page.has_room_for(record_len):
                    return top
                self._free_space[top] = page.total_free()
        for page_no in sorted(self._free_space, reverse=True):
            if page_no == avoid:
                continue
            # pre-filter only; has_room_for() is the exact check (a freed
            # slot entry may be reusable, so no slot-entry slack is added)
            if self._free_space[page_no] >= record_len:
                with self.pool.page(self.file_id, page_no) as page:
                    if page.has_room_for(record_len):
                        return page_no
                    self._free_space[page_no] = page.total_free()
        page_no, page = self.pool.new_page(self.file_id)
        self._free_space[page_no] = page.total_free()
        self.pool.unpin(self.file_id, page_no)
        return page_no

    def _rebuild_free_space(self) -> None:
        self._free_space.clear()
        for page_no in range(self.num_pages()):
            with self.pool.page(self.file_id, page_no) as page:
                self._free_space[page_no] = page.total_free()


def _rid_pack(rid: RID) -> bytes:
    return _FWD.pack(rid[0], rid[1])


def _rid_unpack(data: bytes) -> RID:
    page_no, slot = _FWD.unpack_from(data, 0)
    return (page_no, slot)
