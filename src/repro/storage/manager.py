"""The storage manager: the top of the storage layer.

A :class:`StorageManager` bundles one simulated disk, one buffer pool, and a
name -> heap-file directory.  Everything above this layer (object store,
indexes, replication, queries) allocates its files here, so a single
``StorageManager`` instance *is* a database's physical storage, and its
``stats`` member is the single source of truth for I/O accounting.
"""

from __future__ import annotations

from repro.errors import DuplicateNameError, FileNotFoundInStoreError
from repro.storage.buffer import BufferPool
from repro.storage.constants import DEFAULT_BUFFER_FRAMES
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.stats import IOSnapshot, IOStatistics


class StorageManager:
    """Owns the disk, the buffer pool, and the file directory."""

    def __init__(self, buffer_frames: int = DEFAULT_BUFFER_FRAMES,
                 metrics=None, faults=None) -> None:
        self.stats = IOStatistics()
        self.disk = SimulatedDisk(self.stats, metrics=metrics, faults=faults)
        self.pool = BufferPool(self.disk, capacity=buffer_frames, metrics=metrics)
        self._files_by_name: dict[str, HeapFile] = {}
        self._files_by_id: dict[int, HeapFile] = {}
        self._names_by_id: dict[int, str] = {}

    def attach_wal(self, wal) -> None:
        """Route buffer-pool events through a write-ahead log."""
        self.pool.wal = wal

    def heap_files(self):
        """All managed heap files (recovery refreshes their caches)."""
        return list(self._files_by_id.values())

    # -- file directory -----------------------------------------------------

    def create_file(self, name: str) -> HeapFile:
        """Create a named heap file."""
        if name in self._files_by_name:
            raise DuplicateNameError(f"file {name!r} already exists")
        file_id = self.disk.create_file()
        heap = HeapFile(self.pool, file_id)
        self._files_by_name[name] = heap
        self._files_by_id[file_id] = heap
        self._names_by_id[file_id] = name
        return heap

    def create_raw_file(self, name: str) -> int:
        """Create a named file managed by its user (e.g. a B+-tree), not by
        a heap; returns the file id."""
        if name in self._files_by_name or name in self._names_by_id.values():
            raise DuplicateNameError(f"file {name!r} already exists")
        file_id = self.disk.create_file()
        self._names_by_id[file_id] = name
        return file_id

    def file(self, name: str) -> HeapFile:
        """Look a heap file up by name."""
        try:
            return self._files_by_name[name]
        except KeyError:
            raise FileNotFoundInStoreError(f"no file named {name!r}") from None

    def file_by_id(self, file_id: int) -> HeapFile:
        """Look a heap file up by its numeric id."""
        try:
            return self._files_by_id[file_id]
        except KeyError:
            raise FileNotFoundInStoreError(f"no file with id {file_id}") from None

    def file_name(self, file_id: int) -> str:
        """Return the name under which ``file_id`` was created."""
        try:
            return self._names_by_id[file_id]
        except KeyError:
            raise FileNotFoundInStoreError(f"no file with id {file_id}") from None

    def has_file(self, name: str) -> bool:
        """Whether a file of that name exists."""
        return name in self._files_by_name

    def drop_file(self, name: str) -> None:
        """Delete a file, its pages, and any buffered frames."""
        heap = self.file(name)
        self.pool.drop_file_pages(heap.file_id)
        self.disk.drop_file(heap.file_id)
        del self._files_by_name[name]
        del self._files_by_id[heap.file_id]
        del self._names_by_id[heap.file_id]

    def drop_raw_file(self, file_id: int) -> None:
        """Delete a raw (non-heap) file, its frames, and its name."""
        self.pool.drop_file_pages(file_id)
        self.disk.drop_file(file_id)
        self._names_by_id.pop(file_id, None)

    def file_names(self) -> list[str]:
        """All file names, sorted."""
        return sorted(self._files_by_name)

    # -- measurement helpers ------------------------------------------------

    def io_breakdown(self, snapshot: IOSnapshot) -> dict[str, tuple[int, int]]:
        """Decompose a snapshot into ``{file_name: (reads, writes)}``.

        This is the empirical analogue of the cost model's per-term
        decomposition (C_read/R, C_read/S, C_read/L, ...).
        """
        out: dict[str, tuple[int, int]] = {}
        for file_id in sorted(snapshot.touched_files()):
            name = self._names_by_id.get(file_id, f"file{file_id}")
            out[name] = (snapshot.reads_for(file_id), snapshot.writes_for(file_id))
        return out

    def snapshot(self) -> IOSnapshot:
        """Snapshot the I/O counters (delegates to :class:`IOStatistics`)."""
        return self.stats.snapshot()

    def cold_cache(self) -> None:
        """Flush and empty the buffer pool, as before a cold-start query."""
        self.pool.invalidate_all()

    def measure(self, fn) -> IOSnapshot:
        """Run ``fn()`` and return the I/O it generated."""
        before = self.snapshot()
        fn()
        return self.snapshot() - before
