"""The storage layer: simulated disk, slotted pages, buffer pool, heap files.

This layer plays the role of the EXODUS Storage Manager in the paper: it
provides paged files, physically based OIDs, and -- crucially for the
experiments -- exact physical I/O accounting.
"""

from repro.storage.buffer import BufferPool
from repro.storage.constants import (
    BTREE_FANOUT,
    LINK_ID_BYTES,
    OBJECT_HEADER_BYTES,
    OID_BYTES,
    PAGE_SIZE,
    TYPE_TAG_BYTES,
    USABLE_PAGE_BYTES,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import RID, HeapFile
from repro.storage.manager import StorageManager
from repro.storage.oid import NULL_OID, OID, is_null
from repro.storage.page import Page
from repro.storage.stats import IOSnapshot, IOStatistics

__all__ = [
    "BTREE_FANOUT",
    "BufferPool",
    "HeapFile",
    "IOSnapshot",
    "IOStatistics",
    "LINK_ID_BYTES",
    "NULL_OID",
    "OBJECT_HEADER_BYTES",
    "OID",
    "OID_BYTES",
    "PAGE_SIZE",
    "Page",
    "RID",
    "SimulatedDisk",
    "StorageManager",
    "TYPE_TAG_BYTES",
    "USABLE_PAGE_BYTES",
    "is_null",
]
