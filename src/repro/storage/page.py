"""Slotted pages.

A page is a fixed-size ``bytearray`` organised as::

    +-----------+---------------------------+---------------------+
    | header 8B | record data (grows ->)    | <- slot directory   |
    +-----------+---------------------------+---------------------+

Header: ``num_slots`` (2 bytes) and ``free_offset`` (2 bytes, the end of the
used data region), plus 4 reserved bytes.  Slot-directory entries are 4
bytes -- ``(offset, length)`` -- and grow backwards from the end of the
page.  A slot whose offset is :data:`EMPTY_SLOT_OFFSET` is free and may be
reused, which keeps slot numbers (and hence physically based OIDs) stable
across deletions.

Deletions leave holes in the data region; :meth:`Page.insert` compacts the
page transparently when the contiguous free region is too small but the
total free space suffices.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import PageFullError, RecordNotFoundError, RecordTooLargeError
from repro.storage.constants import (
    EMPTY_SLOT_OFFSET,
    MAX_RECORD_BYTES,
    PAGE_HEADER_BYTES,
    PAGE_SIZE,
    SLOT_ENTRY_BYTES,
)

_HEADER = struct.Struct(">HH4x")
_SLOT = struct.Struct(">HH")


class Page:
    """An in-memory image of one slotted disk page."""

    __slots__ = ("data", "_live_bytes", "_free_slots")

    def __init__(self, data: bytearray | None = None) -> None:
        if data is None:
            data = bytearray(PAGE_SIZE)
            _HEADER.pack_into(data, 0, 0, PAGE_HEADER_BYTES)
        elif len(data) != PAGE_SIZE:
            raise ValueError(f"page image must be {PAGE_SIZE} bytes, got {len(data)}")
        self.data = data
        # Space accounting (live record bytes, free slot-directory entries)
        # is cached on the wrapper and maintained incrementally: computing
        # it from the slot directory on every insert made record placement
        # quadratic in page fill.  Lazily rebuilt from the image on first
        # use, so wrappers around non-slotted pages (B-tree nodes) never
        # pay for it.
        self._live_bytes: int | None = None
        self._free_slots = 0

    def _ensure_space_cache(self) -> None:
        if self._live_bytes is None:
            live = free = 0
            for offset, length in self._slots():
                if offset == EMPTY_SLOT_OFFSET:
                    free += 1
                else:
                    live += length
            self._live_bytes = live
            self._free_slots = free

    # -- header accessors ---------------------------------------------------

    @property
    def num_slots(self) -> int:
        """Number of slot-directory entries (live or free)."""
        return _HEADER.unpack_from(self.data, 0)[0]

    @property
    def free_offset(self) -> int:
        """Offset one past the end of the used data region."""
        return _HEADER.unpack_from(self.data, 0)[1]

    def _set_header(self, num_slots: int, free_offset: int) -> None:
        _HEADER.pack_into(self.data, 0, num_slots, free_offset)

    # -- slot directory -----------------------------------------------------

    def _slot_pos(self, slot: int) -> int:
        return PAGE_SIZE - (slot + 1) * SLOT_ENTRY_BYTES

    def _read_slot(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < self.num_slots:
            raise RecordNotFoundError(f"slot {slot} out of range (page has {self.num_slots})")
        return _SLOT.unpack_from(self.data, self._slot_pos(slot))

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, self._slot_pos(slot), offset, length)

    # -- space accounting ---------------------------------------------------

    def contiguous_free(self) -> int:
        """Bytes available between the data region and the slot directory."""
        return PAGE_SIZE - self.free_offset - self.num_slots * SLOT_ENTRY_BYTES

    def total_free(self) -> int:
        """Free bytes counting holes left by deleted / shrunken records."""
        self._ensure_space_cache()
        return (PAGE_SIZE - PAGE_HEADER_BYTES - self._live_bytes
                - self.num_slots * SLOT_ENTRY_BYTES)

    def _slots(self) -> Iterator[tuple[int, int]]:
        for slot in range(self.num_slots):
            yield _SLOT.unpack_from(self.data, self._slot_pos(slot))

    def _find_free_slot(self) -> int | None:
        self._ensure_space_cache()
        if self._free_slots == 0:
            return None
        for slot, (offset, _length) in enumerate(self._slots()):
            if offset == EMPTY_SLOT_OFFSET:
                return slot
        return None

    def has_room_for(self, length: int) -> bool:
        """Whether a record of ``length`` bytes can be inserted (after
        compaction if needed)."""
        need = length if self._find_free_slot() is not None else length + SLOT_ENTRY_BYTES
        return self.total_free() >= need

    # -- record operations --------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Store ``record`` and return its slot number.

        Raises :class:`PageFullError` when the page cannot hold the record
        and :class:`RecordTooLargeError` when no page ever could.
        """
        if len(record) > MAX_RECORD_BYTES:
            raise RecordTooLargeError(
                f"record of {len(record)} bytes exceeds page capacity {MAX_RECORD_BYTES}"
            )
        reuse = self._find_free_slot()
        need = len(record) + (0 if reuse is not None else SLOT_ENTRY_BYTES)
        if self.contiguous_free() < need:
            if self.total_free() < need:
                raise PageFullError(f"no room for {len(record)}-byte record")
            self.compact()
        offset = self.free_offset
        self.data[offset:offset + len(record)] = record
        if reuse is not None:
            slot = reuse
            self._write_slot(slot, offset, len(record))
            self._set_header(self.num_slots, offset + len(record))
            self._free_slots -= 1
        else:
            slot = self.num_slots
            self._set_header(slot + 1, offset + len(record))
            self._write_slot(slot, offset, len(record))
        self._live_bytes += len(record)
        return slot

    def read(self, slot: int) -> bytes:
        """Return the record stored in ``slot``."""
        offset, length = self._read_slot(slot)
        if offset == EMPTY_SLOT_OFFSET:
            raise RecordNotFoundError(f"slot {slot} is empty")
        return bytes(self.data[offset:offset + length])

    def delete(self, slot: int) -> None:
        """Free ``slot``.  The slot number may be reused by later inserts.

        Trailing empty slots are reclaimed outright (their directory bytes
        return to the free pool); interior slot numbers stay allocated so
        record ids remain stable.
        """
        offset, length = self._read_slot(slot)
        if offset == EMPTY_SLOT_OFFSET:
            raise RecordNotFoundError(f"slot {slot} is already empty")
        self._ensure_space_cache()
        self._write_slot(slot, EMPTY_SLOT_OFFSET, 0)
        self._live_bytes -= length
        self._free_slots += 1
        num_slots = self.num_slots
        while num_slots > 0 and self._read_slot(num_slots - 1)[0] == EMPTY_SLOT_OFFSET:
            num_slots -= 1
        if num_slots != self.num_slots:
            self._free_slots -= self.num_slots - num_slots
            self._set_header(num_slots, self.free_offset)

    def update(self, slot: int, record: bytes) -> None:
        """Replace the record in ``slot``, keeping the slot number stable.

        Raises :class:`PageFullError` if the page cannot absorb the growth;
        callers (the heap file) then relocate the record elsewhere.
        """
        offset, length = self._read_slot(slot)
        if offset == EMPTY_SLOT_OFFSET:
            raise RecordNotFoundError(f"slot {slot} is empty")
        self._ensure_space_cache()
        if len(record) <= length:
            self.data[offset:offset + len(record)] = record
            self._write_slot(slot, offset, len(record))
            self._live_bytes += len(record) - length
            return
        if len(record) > MAX_RECORD_BYTES:
            raise RecordTooLargeError(
                f"record of {len(record)} bytes exceeds page capacity {MAX_RECORD_BYTES}"
            )
        # Grow: free the old image, then place the new one like an insert
        # that reuses this exact slot.
        self._write_slot(slot, EMPTY_SLOT_OFFSET, 0)
        self._live_bytes -= length
        if self.contiguous_free() < len(record):
            if self.total_free() < len(record):
                # roll back so the caller still sees the old record
                self._write_slot(slot, offset, length)
                self._live_bytes += length
                raise PageFullError(f"cannot grow record in slot {slot} to {len(record)} bytes")
            self.compact()
        new_offset = self.free_offset
        self.data[new_offset:new_offset + len(record)] = record
        self._write_slot(slot, new_offset, len(record))
        self._set_header(self.num_slots, new_offset + len(record))
        self._live_bytes += len(record)

    def compact(self) -> None:
        """Squeeze out holes, preserving slot numbers."""
        live = [
            (slot, offset, length)
            for slot, (offset, length) in enumerate(self._slots())
            if offset != EMPTY_SLOT_OFFSET
        ]
        live.sort(key=lambda item: item[1])
        cursor = PAGE_HEADER_BYTES
        for slot, offset, length in live:
            if offset != cursor:
                self.data[cursor:cursor + length] = self.data[offset:offset + length]
                self._write_slot(slot, cursor, length)
            cursor += length
        self._set_header(self.num_slots, cursor)

    # -- iteration ----------------------------------------------------------

    def live_slots(self) -> Iterator[int]:
        """Yield the slot numbers currently holding records."""
        for slot, (offset, _length) in enumerate(self._slots()):
            if offset != EMPTY_SLOT_OFFSET:
                yield slot

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(slot, record)`` pairs in slot order."""
        for slot in self.live_slots():
            yield slot, self.read(slot)
