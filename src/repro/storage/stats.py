"""I/O statistics.

Every experiment in the paper is stated in units of disk I/O, so the engine
threads a single :class:`IOStatistics` object through the simulated disk and
buffer pool.  ``snapshot`` / subtraction make it easy to measure the cost of
one query::

    before = stats.snapshot()
    run_query()
    cost = stats.snapshot() - before
    print(cost.total_io)

Counters are also kept **per file**, which decomposes a query's cost the
way the paper's cost terms do (C_read/R, C_read/S, C_read/L, ...)::

    cost.reads_for(emp_file_id)     # pages of Emp1 read by the query
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


def _sub_counts(a: dict[int, int], b: dict[int, int]) -> dict[int, int]:
    out = dict(a)
    for key, value in b.items():
        out[key] = out.get(key, 0) - value
    return {key: value for key, value in out.items() if value}


@dataclass(frozen=True)
class IOSnapshot:
    """An immutable point-in-time copy of the counters."""

    physical_reads: int = 0
    physical_writes: int = 0
    logical_reads: int = 0
    buffer_hits: int = 0
    #: buffer frames evicted to make room (LRU victims only).
    evictions: int = 0
    #: dirty pages written back (on eviction *and* on explicit flushes) --
    #: these writes also appear in ``physical_writes``; the separate count
    #: explains why a read-only query can show write I/O.
    dirty_writebacks: int = 0
    #: pages physically read ahead of demand by scan read-ahead (these
    #: reads also appear in ``physical_reads``).
    prefetch_issued: int = 0
    #: demand fetches served by a frame that read-ahead loaded.
    prefetch_hits: int = 0
    #: object reads avoided because a sort-and-dedupe batch had already
    #: resolved the same OID (the batched join's saved functional joins).
    batch_dedup_saved: int = 0
    file_reads: dict = field(default_factory=dict)
    file_writes: dict = field(default_factory=dict)

    @property
    def total_io(self) -> int:
        """Physical reads plus physical writes -- the paper's cost unit."""
        return self.physical_reads + self.physical_writes

    def reads_for(self, file_id: int) -> int:
        """Physical reads charged to one file."""
        return self.file_reads.get(file_id, 0)

    def writes_for(self, file_id: int) -> int:
        """Physical writes charged to one file."""
        return self.file_writes.get(file_id, 0)

    def io_for(self, file_id: int) -> int:
        """Total physical I/O charged to one file."""
        return self.reads_for(file_id) + self.writes_for(file_id)

    def touched_files(self) -> set[int]:
        """Ids of every file this snapshot charged I/O to."""
        return set(self.file_reads) | set(self.file_writes)

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            physical_reads=self.physical_reads - other.physical_reads,
            physical_writes=self.physical_writes - other.physical_writes,
            logical_reads=self.logical_reads - other.logical_reads,
            buffer_hits=self.buffer_hits - other.buffer_hits,
            evictions=self.evictions - other.evictions,
            dirty_writebacks=self.dirty_writebacks - other.dirty_writebacks,
            prefetch_issued=self.prefetch_issued - other.prefetch_issued,
            prefetch_hits=self.prefetch_hits - other.prefetch_hits,
            batch_dedup_saved=self.batch_dedup_saved - other.batch_dedup_saved,
            file_reads=_sub_counts(self.file_reads, other.file_reads),
            file_writes=_sub_counts(self.file_writes, other.file_writes),
        )


class IOStatistics:
    """Mutable I/O counters shared by a disk and its buffer pool.

    Counted from concurrently executing statements, so every mutation
    happens under one small mutex (a leaf lock: nothing is called while
    it is held).  ``snapshot`` takes the same mutex so a reader never
    sees a half-applied update.
    """

    __slots__ = (
        "physical_reads",
        "physical_writes",
        "logical_reads",
        "buffer_hits",
        "evictions",
        "dirty_writebacks",
        "prefetch_issued",
        "prefetch_hits",
        "batch_dedup_saved",
        "file_reads",
        "file_writes",
        "_mutex",
    )

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.physical_reads = 0
        self.physical_writes = 0
        self.logical_reads = 0
        self.buffer_hits = 0
        self.evictions = 0
        self.dirty_writebacks = 0
        self.prefetch_issued = 0
        self.prefetch_hits = 0
        self.batch_dedup_saved = 0
        self.file_reads: dict[int, int] = {}
        self.file_writes: dict[int, int] = {}

    def reset(self) -> None:
        """Zero all counters."""
        with self._mutex:
            self.physical_reads = 0
            self.physical_writes = 0
            self.logical_reads = 0
            self.buffer_hits = 0
            self.evictions = 0
            self.dirty_writebacks = 0
            self.prefetch_issued = 0
            self.prefetch_hits = 0
            self.batch_dedup_saved = 0
            self.file_reads.clear()
            self.file_writes.clear()

    def count_read(self, file_id: int) -> None:
        """Charge one physical read to ``file_id``."""
        with self._mutex:
            self.physical_reads += 1
            self.file_reads[file_id] = self.file_reads.get(file_id, 0) + 1

    def count_write(self, file_id: int) -> None:
        """Charge one physical write to ``file_id``."""
        with self._mutex:
            self.physical_writes += 1
            self.file_writes[file_id] = self.file_writes.get(file_id, 0) + 1

    def count_logical_read(self) -> None:
        """Record one page requested from the buffer pool."""
        with self._mutex:
            self.logical_reads += 1

    def count_buffer_hit(self) -> None:
        """Record one fetch served without touching the disk."""
        with self._mutex:
            self.buffer_hits += 1

    def count_eviction(self) -> None:
        """Record one buffer frame evicted to make room."""
        with self._mutex:
            self.evictions += 1

    def count_writeback(self) -> None:
        """Record one dirty page written back from the pool."""
        with self._mutex:
            self.dirty_writebacks += 1

    def count_prefetch(self) -> None:
        """Record one page physically read by scan read-ahead."""
        with self._mutex:
            self.prefetch_issued += 1

    def count_prefetch_hit(self) -> None:
        """Record one demand fetch served by a read-ahead frame."""
        with self._mutex:
            self.prefetch_hits += 1

    def count_batch_dedup(self, saved: int) -> None:
        """Record object reads a sort-and-dedupe batch avoided."""
        with self._mutex:
            self.batch_dedup_saved += saved

    def snapshot(self) -> IOSnapshot:
        """Return an immutable copy of the current counters."""
        with self._mutex:
            return IOSnapshot(
                physical_reads=self.physical_reads,
                physical_writes=self.physical_writes,
                logical_reads=self.logical_reads,
                buffer_hits=self.buffer_hits,
                evictions=self.evictions,
                dirty_writebacks=self.dirty_writebacks,
                prefetch_issued=self.prefetch_issued,
                prefetch_hits=self.prefetch_hits,
                batch_dedup_saved=self.batch_dedup_saved,
                file_reads=dict(self.file_reads),
                file_writes=dict(self.file_writes),
            )

    @property
    def total_io(self) -> int:
        """Physical reads plus physical writes."""
        return self.physical_reads + self.physical_writes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IOStatistics(pr={self.physical_reads}, pw={self.physical_writes}, "
            f"lr={self.logical_reads}, hits={self.buffer_hits}, "
            f"ev={self.evictions}, wb={self.dirty_writebacks})"
        )
