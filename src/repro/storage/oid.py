"""Physical object identifiers.

Following EXODUS, OIDs are *physically based*: an OID names the disk address
of the object -- ``(file_id, page_no, slot)``.  Physically based OIDs make
it possible to propagate updates in clustered order (Section 4.1 of the
paper relies on this to keep link-object I/O sequential).

An OID packs into :data:`~repro.storage.constants.OID_BYTES` bytes:
2 bytes of file id, 4 bytes of page number, 2 bytes of slot.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.storage.constants import OID_BYTES

_OID_STRUCT = struct.Struct(">HIH")

assert _OID_STRUCT.size == OID_BYTES


@dataclass(frozen=True, order=True, slots=True)
class OID:
    """A physically based object identifier.

    OIDs order lexicographically by ``(file_id, page_no, slot)``, which is
    physical placement order -- sorting a list of OIDs therefore yields a
    clustered access sequence.
    """

    file_id: int
    page_no: int
    slot: int

    def pack(self) -> bytes:
        """Encode this OID to its fixed 8-byte on-disk form."""
        return _OID_STRUCT.pack(self.file_id, self.page_no, self.slot)

    @staticmethod
    def unpack(data: bytes, offset: int = 0) -> "OID":
        """Decode an OID from ``data`` starting at ``offset``."""
        file_id, page_no, slot = _OID_STRUCT.unpack_from(data, offset)
        return OID(file_id, page_no, slot)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OID({self.file_id}:{self.page_no}.{self.slot})"


#: A null OID used to encode absent references.
NULL_OID = OID(0xFFFF, 0xFFFFFFFF, 0xFFFF)


def is_null(oid: OID) -> bool:
    """Return True when ``oid`` is the null reference sentinel."""
    return oid == NULL_OID
