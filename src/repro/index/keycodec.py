"""Order-preserving key encodings for B+-trees.

B+-tree nodes store fixed-width byte-string keys compared with memcmp
semantics, so every supported field kind gets an *order-preserving*
encoding:

* ``int``    -- offset-binary (flip the sign bit) so two's-complement order
  becomes unsigned byte order,
* ``float``  -- IEEE-754 with the standard sign trick (flip all bits of
  negatives, flip only the sign bit of non-negatives),
* ``char[n]``-- NUL-padded UTF-8 (memcmp order = byte-wise string order).

:func:`composite` appends a packed OID to a key, making duplicate field
values unique inside the tree -- the textbook trick for secondary indexes
with non-unique keys.
"""

from __future__ import annotations

import struct

from repro.errors import SerializationError
from repro.objects.types import FieldDef, FieldKind
from repro.storage.oid import OID

_INT = struct.Struct(">I")
_LONG = struct.Struct(">Q")


def encode_int(value: int) -> bytes:
    """4-byte order-preserving encoding of a signed 32-bit int."""
    if not -(2**31) <= value < 2**31:
        raise SerializationError(f"int key {value} out of 32-bit range")
    return _INT.pack((value + 2**31) & 0xFFFFFFFF)


def decode_int(data: bytes) -> int:
    """Inverse of :func:`encode_int`."""
    return _INT.unpack_from(data, 0)[0] - 2**31


def encode_float(value: float) -> bytes:
    """8-byte order-preserving encoding of an IEEE double."""
    bits = struct.unpack(">Q", struct.pack(">d", float(value)))[0]
    if bits & (1 << 63):
        bits ^= 0xFFFFFFFFFFFFFFFF  # negative: flip everything
    else:
        bits ^= 1 << 63  # non-negative: flip sign bit
    return _LONG.pack(bits)


def decode_float(data: bytes) -> float:
    """Inverse of :func:`encode_float`."""
    bits = _LONG.unpack_from(data, 0)[0]
    if bits & (1 << 63):
        bits ^= 1 << 63
    else:
        bits ^= 0xFFFFFFFFFFFFFFFF
    return struct.unpack(">d", struct.pack(">Q", bits))[0]


def encode_char(value: str, width: int) -> bytes:
    """NUL-padded UTF-8 of fixed ``width`` bytes."""
    raw = value.encode("utf-8")
    if len(raw) > width:
        raise SerializationError(f"string key needs {len(raw)} bytes, index allows {width}")
    return raw.ljust(width, b"\x00")


def decode_char(data: bytes) -> str:
    """Inverse of :func:`encode_char`."""
    return data.rstrip(b"\x00").decode("utf-8")


def key_width_for(field: FieldDef) -> int:
    """Encoded key width of an index on ``field``."""
    if field.kind is FieldKind.INT:
        return 4
    if field.kind is FieldKind.FLOAT:
        return 8
    if field.kind is FieldKind.CHAR:
        return field.size
    raise SerializationError(f"cannot index field of kind {field.kind.value}")


def encode_key(field: FieldDef, value) -> bytes:
    """Encode a field value as a fixed-width, order-preserving key."""
    if field.kind is FieldKind.INT:
        return encode_int(value)
    if field.kind is FieldKind.FLOAT:
        return encode_float(value)
    if field.kind is FieldKind.CHAR:
        return encode_char(value, field.size)
    raise SerializationError(f"cannot index field of kind {field.kind.value}")


def decode_key(field: FieldDef, data: bytes):
    """Inverse of :func:`encode_key`."""
    if field.kind is FieldKind.INT:
        return decode_int(data)
    if field.kind is FieldKind.FLOAT:
        return decode_float(data)
    if field.kind is FieldKind.CHAR:
        return decode_char(data)
    raise SerializationError(f"cannot index field of kind {field.kind.value}")


def composite(key: bytes, oid: OID) -> bytes:
    """Key + packed OID: makes duplicate keys unique inside the tree."""
    return key + oid.pack()


MIN_OID_SUFFIX = bytes(8)
MAX_OID_SUFFIX = bytes([0xFF]) * 8
