"""A disk-based B+-tree.

The tree lives in one heap-less paged file accessed through the buffer
pool, so every node touched is charged I/O exactly like data pages are --
which is what lets the empirical benchmarks count "reading the index on
field_r" the way the analytical model does.

Layout
------
* Page 0 is the **meta page**: root page number, tree height, key width.
* Every other page is a node::

      header  (8 bytes): is_leaf(1) | n_keys(2) | link(4) | pad(1)
      entries (fixed width, sorted by key):
          leaf:     key | value(8)       -- value is a packed OID
          internal: key | child(4)

  For leaves ``link`` is the next-leaf pointer (sibling chain for range
  scans); for internal nodes it holds the leftmost child, so a node with
  *n* keys has *n + 1* children.

Keys are fixed-width byte strings (see :mod:`repro.index.keycodec`).
Duplicate logical keys are supported by suffixing the key with the value's
OID (*composite keys*) at the :class:`~repro.index.secondary.SecondaryIndex`
level; the raw tree requires unique byte-string keys.

Deletion rebalances: underfull nodes borrow from a sibling or merge with
one, and the root collapses as the tree shrinks, so delete-heavy workloads
keep nodes at least half full.  (Merged-away pages are not recycled; a
free-page list would be the natural next step.)
"""

from __future__ import annotations

import bisect
import struct
from typing import Iterator

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.constants import PAGE_SIZE
from repro.storage.oid import OID

_NODE_HEADER = struct.Struct(">BHIx")
_META = struct.Struct(">IHB")
_NO_LINK = 0xFFFFFFFF
_CHILD = struct.Struct(">I")

NODE_HEADER_BYTES = _NODE_HEADER.size
VALUE_BYTES = 8  # packed OID


class _Node:
    """A decoded node image backed by the raw page bytes."""

    __slots__ = ("page_no", "is_leaf", "link", "keys", "payloads")

    def __init__(self, page_no: int, is_leaf: bool, link: int,
                 keys: list[bytes], payloads: list[bytes]) -> None:
        self.page_no = page_no
        self.is_leaf = is_leaf
        self.link = link
        self.keys = keys
        self.payloads = payloads  # leaf: values; internal: packed child ids


class BPlusTree:
    """A B+-tree over fixed-width byte-string keys."""

    def __init__(self, pool: BufferPool, file_id: int, key_width: int,
                 _open_existing: bool = False) -> None:
        if key_width < 1:
            raise StorageError("key width must be positive")
        self.pool = pool
        self.file_id = file_id
        self.key_width = key_width
        self._leaf_entry = key_width + VALUE_BYTES
        self._internal_entry = key_width + _CHILD.size
        avail = PAGE_SIZE - NODE_HEADER_BYTES
        #: max entries per node kind
        self.leaf_capacity = avail // self._leaf_entry
        self.internal_capacity = avail // self._internal_entry
        if self.leaf_capacity < 3 or self.internal_capacity < 3:
            raise StorageError(f"key width {key_width} too large for a page")
        if _open_existing:
            self.root_page, stored_width, self.height = self._read_meta()
            if stored_width != key_width:
                raise StorageError(
                    f"index stores {stored_width}-byte keys, opened with {key_width}"
                )
        else:
            # page 0 = meta, page 1 = empty root leaf
            meta_no = self.pool.disk.allocate_page(file_id)
            assert meta_no == 0
            root_no = self.pool.disk.allocate_page(file_id)
            self.root_page = root_no
            self.height = 1
            self._write_node(_Node(root_no, True, _NO_LINK, [], []))
            self._write_meta()

    @classmethod
    def open(cls, pool: BufferPool, file_id: int, key_width: int) -> "BPlusTree":
        """Re-open a tree persisted in ``file_id``."""
        return cls(pool, file_id, key_width, _open_existing=True)

    def reopen_meta(self) -> None:
        """Re-read the cached root/height after rollback or recovery
        rewrote this tree's pages underneath the session."""
        self.root_page, __, self.height = self._read_meta()

    @classmethod
    def bulk_load(cls, pool: BufferPool, file_id: int, key_width: int,
                  items, fill_factor: float = 0.9) -> "BPlusTree":
        """Build a tree bottom-up from ``items`` sorted by key.

        Far cheaper than repeated inserts (every page is written exactly
        once) and produces tightly packed, physically sequential leaves --
        the layout a freshly built index should have.  ``items`` yields
        ``(key, OID)`` pairs in strictly ascending key order.
        """
        tree = cls(pool, file_id, key_width)
        tree.bulk_fill(items, fill_factor)
        return tree

    def bulk_fill(self, items, fill_factor: float = 0.9) -> None:
        """Fill an *empty* tree bottom-up from sorted ``items``."""
        tree = self
        if not 0.1 <= fill_factor <= 1.0:
            raise StorageError("fill factor must be in [0.1, 1.0]")
        if tree.height != 1 or next(tree.items(), None) is not None:
            raise StorageError("bulk fill requires an empty tree")
        per_leaf = max(2, int(tree.leaf_capacity * fill_factor))
        per_node = max(2, int(tree.internal_capacity * fill_factor))
        # --- leaves ---------------------------------------------------
        level: list[tuple[bytes, int]] = []  # (first key, page_no)
        batch_keys: list[bytes] = []
        batch_vals: list[bytes] = []
        prev_key: bytes | None = None
        prev_leaf: _Node | None = None

        def flush_leaf() -> None:
            nonlocal prev_leaf
            if not batch_keys:
                return
            page_no = tree._allocate_node()
            node = _Node(page_no, True, _NO_LINK, list(batch_keys), list(batch_vals))
            if prev_leaf is not None:
                prev_leaf.link = page_no
                tree._write_node(prev_leaf)
            tree._write_node(node)
            level.append((batch_keys[0], page_no))
            prev_leaf = node
            batch_keys.clear()
            batch_vals.clear()

        count = 0
        for key, value in items:
            tree._check_key(key)
            if prev_key is not None and key <= prev_key:
                raise StorageError("bulk load requires strictly ascending keys")
            prev_key = key
            batch_keys.append(key)
            batch_vals.append(value.pack())
            count += 1
            if len(batch_keys) >= per_leaf:
                flush_leaf()
        flush_leaf()
        if not level:
            return  # empty input: keep the fresh empty root
        # --- internal levels --------------------------------------------
        height = 1
        while len(level) > 1:
            groups = [
                level[start:start + per_node + 1]
                for start in range(0, len(level), per_node + 1)
            ]
            if len(groups) > 1 and len(groups[-1]) == 1:
                # rebalance: a single-child internal node has no separator
                # key, which deletion's rebalancing cannot handle
                groups[-1].insert(0, groups[-2].pop())
            next_level: list[tuple[bytes, int]] = []
            for group in groups:
                page_no = tree._allocate_node()
                node = _Node(
                    page_no, False, group[0][1],
                    [key for key, __ in group[1:]],
                    [_CHILD.pack(child) for __, child in group[1:]],
                )
                tree._write_node(node)
                next_level.append((group[0][0], page_no))
            level = next_level
            height += 1
        tree.root_page = level[0][1]
        tree.height = height
        tree._write_meta()

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------

    def insert(self, key: bytes, value: OID) -> None:
        """Insert a unique key.  Duplicate keys raise :class:`StorageError`."""
        self._check_key(key)
        split = self._insert(self.root_page, self.height, key, value.pack())
        if split is not None:
            sep_key, right_page = split
            new_root = self._allocate_node()
            node = _Node(new_root, False, self.root_page, [sep_key],
                         [_CHILD.pack(right_page)])
            self._write_node(node)
            self.root_page = new_root
            self.height += 1
            self._write_meta()

    def search(self, key: bytes) -> OID | None:
        """Exact lookup; returns the stored OID or None."""
        self._check_key(key)
        node = self._descend_to_leaf(key)
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return OID.unpack(node.payloads[idx])
        return None

    def delete(self, key: bytes) -> bool:
        """Remove a key; returns whether it was present.

        Underfull nodes borrow from a sibling or merge with one, and the
        root collapses when it empties -- the full B+-tree deletion
        algorithm, so heavy delete workloads keep the tree compact.
        """
        self._check_key(key)
        found = self._delete(self.root_page, key)
        if not found:
            return False
        root = self._read_node(self.root_page)
        if not root.is_leaf and not root.keys:
            self.root_page = root.link  # the lone surviving child
            self.height -= 1
            self._write_meta()
        return True

    def _delete(self, page_no: int, key: bytes) -> bool:
        node = self._read_node(page_no)
        if node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx >= len(node.keys) or node.keys[idx] != key:
                return False
            del node.keys[idx]
            del node.payloads[idx]
            self._write_node(node)
            return True
        ci = bisect.bisect_right(node.keys, key)
        if not self._delete(self._child(node, ci), key):
            return False
        self._rebalance_child(node, ci)
        return True

    # -- rebalancing internals ----------------------------------------------

    @staticmethod
    def _child(node: _Node, i: int) -> int:
        return node.link if i == 0 else _CHILD.unpack(node.payloads[i - 1])[0]

    def _min_keys(self, node: _Node) -> int:
        capacity = self.leaf_capacity if node.is_leaf else self.internal_capacity
        return capacity // 2

    def _rebalance_child(self, parent: _Node, ci: int) -> None:
        child = self._read_node(self._child(parent, ci))
        if len(child.keys) >= self._min_keys(child):
            return
        if ci > 0:
            left = self._read_node(self._child(parent, ci - 1))
            if len(left.keys) > self._min_keys(left):
                self._borrow_from_left(parent, ci, left, child)
                return
        if ci < len(parent.keys):
            right = self._read_node(self._child(parent, ci + 1))
            if len(right.keys) > self._min_keys(right):
                self._borrow_from_right(parent, ci, child, right)
                return
        if ci > 0:
            self._merge(parent, ci - 1)
        else:
            self._merge(parent, ci)

    def _borrow_from_left(self, parent: _Node, ci: int, left: _Node,
                          child: _Node) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.payloads.insert(0, left.payloads.pop())
            parent.keys[ci - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[ci - 1])
            child.payloads.insert(0, _CHILD.pack(child.link))
            child.link = _CHILD.unpack(left.payloads.pop())[0]
            parent.keys[ci - 1] = left.keys.pop()
        self._write_node(left)
        self._write_node(child)
        self._write_node(parent)

    def _borrow_from_right(self, parent: _Node, ci: int, child: _Node,
                           right: _Node) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.payloads.append(right.payloads.pop(0))
            parent.keys[ci] = right.keys[0]
        else:
            child.keys.append(parent.keys[ci])
            child.payloads.append(_CHILD.pack(right.link))
            right.link = _CHILD.unpack(right.payloads.pop(0))[0]
            parent.keys[ci] = right.keys.pop(0)
        self._write_node(right)
        self._write_node(child)
        self._write_node(parent)

    def _merge(self, parent: _Node, li: int) -> None:
        """Merge child ``li + 1`` into child ``li`` (its left sibling)."""
        left = self._read_node(self._child(parent, li))
        right = self._read_node(self._child(parent, li + 1))
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.payloads.extend(right.payloads)
            left.link = right.link
        else:
            left.keys.append(parent.keys[li])
            left.keys.extend(right.keys)
            left.payloads.append(_CHILD.pack(right.link))
            left.payloads.extend(right.payloads)
        del parent.keys[li]
        del parent.payloads[li]  # drops the pointer to the right child
        self._write_node(left)
        self._write_node(parent)
        # the right node's page becomes garbage (no free-page recycling)

    def range_scan(self, lo: bytes | None = None, hi: bytes | None = None,
                   include_hi: bool = True) -> Iterator[tuple[bytes, OID]]:
        """Yield ``(key, value)`` with lo <= key (<=|<) hi, in key order.

        ``lo``/``hi`` may be shorter than the key width, acting as prefixes
        (``lo`` is right-padded with 0x00, ``hi`` with 0xFF when inclusive).
        """
        lo_full = (lo or b"").ljust(self.key_width, b"\x00")
        node = self._descend_to_leaf(lo_full)
        idx = bisect.bisect_left(node.keys, lo_full)
        while True:
            while idx < len(node.keys):
                key = node.keys[idx]
                if hi is not None:
                    bound = hi.ljust(self.key_width, b"\xff" if include_hi else b"\x00")
                    if include_hi:
                        if key > bound:
                            return
                    elif key >= bound:
                        return
                yield key, OID.unpack(node.payloads[idx])
                idx += 1
            if node.link == _NO_LINK:
                return
            node = self._read_node(node.link)
            idx = 0

    def items(self) -> Iterator[tuple[bytes, OID]]:
        """All entries in key order."""
        return self.range_scan()

    def count(self) -> int:
        """Number of entries (walks the leaf chain)."""
        return sum(1 for __ in self.items())

    def clear(self) -> None:
        """Reset to an empty one-leaf tree (old pages become garbage)."""
        root_no = self._allocate_node()
        self._write_node(_Node(root_no, True, _NO_LINK, [], []))
        self.root_page = root_no
        self.height = 1
        self._write_meta()

    def num_pages(self) -> int:
        """Pages allocated to the index file (meta + nodes, incl. garbage)."""
        return self.pool.disk.num_pages(self.file_id)

    # ------------------------------------------------------------------
    # insertion internals
    # ------------------------------------------------------------------

    def _insert(self, page_no: int, level: int, key: bytes,
                value: bytes) -> tuple[bytes, int] | None:
        node = self._read_node(page_no)
        if node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                raise StorageError(f"duplicate key {key!r}")
            node.keys.insert(idx, key)
            node.payloads.insert(idx, value)
            if len(node.keys) <= self.leaf_capacity:
                self._write_node(node)
                return None
            return self._split_leaf(node)
        # internal
        idx = bisect.bisect_right(node.keys, key)
        child = node.link if idx == 0 else _CHILD.unpack(node.payloads[idx - 1])[0]
        split = self._insert(child, level - 1, key, value)
        if split is None:
            return None
        sep_key, right_page = split
        idx = bisect.bisect_right(node.keys, sep_key)
        node.keys.insert(idx, sep_key)
        node.payloads.insert(idx, _CHILD.pack(right_page))
        if len(node.keys) <= self.internal_capacity:
            self._write_node(node)
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Node) -> tuple[bytes, int]:
        mid = len(node.keys) // 2
        right_no = self._allocate_node()
        right = _Node(right_no, True, node.link, node.keys[mid:], node.payloads[mid:])
        node.keys = node.keys[:mid]
        node.payloads = node.payloads[:mid]
        node.link = right_no
        self._write_node(right)
        self._write_node(node)
        return right.keys[0], right_no

    def _split_internal(self, node: _Node) -> tuple[bytes, int]:
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right_no = self._allocate_node()
        # right child0 = the child just after the separator
        right_link = _CHILD.unpack(node.payloads[mid])[0]
        right = _Node(right_no, False, right_link,
                      node.keys[mid + 1:], node.payloads[mid + 1:])
        node.keys = node.keys[:mid]
        node.payloads = node.payloads[:mid]
        self._write_node(right)
        self._write_node(node)
        return sep_key, right_no

    # ------------------------------------------------------------------
    # node / page I/O
    # ------------------------------------------------------------------

    def _descend_to_leaf(self, key: bytes) -> _Node:
        node = self._read_node(self.root_page)
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            child = node.link if idx == 0 else _CHILD.unpack(node.payloads[idx - 1])[0]
            node = self._read_node(child)
        return node

    def _allocate_node(self) -> int:
        page_no, __ = self.pool.new_page(self.file_id)
        self.pool.unpin(self.file_id, page_no)
        return page_no

    def _read_node(self, page_no: int) -> _Node:
        with self.pool.page(self.file_id, page_no) as page:
            raw = page.data
            is_leaf, n_keys, link = _NODE_HEADER.unpack_from(raw, 0)
            entry = self._leaf_entry if is_leaf else self._internal_entry
            payload_w = VALUE_BYTES if is_leaf else _CHILD.size
            keys = []
            payloads = []
            pos = NODE_HEADER_BYTES
            for __ in range(n_keys):
                keys.append(bytes(raw[pos:pos + self.key_width]))
                payloads.append(bytes(raw[pos + self.key_width:pos + self.key_width + payload_w]))
                pos += entry
        return _Node(page_no, bool(is_leaf), link, keys, payloads)

    def _write_node(self, node: _Node) -> None:
        with self.pool.page(self.file_id, node.page_no) as page:
            raw = page.data
            _NODE_HEADER.pack_into(raw, 0, int(node.is_leaf), len(node.keys), node.link)
            pos = NODE_HEADER_BYTES
            for key, payload in zip(node.keys, node.payloads):
                raw[pos:pos + len(key)] = key
                raw[pos + self.key_width:pos + self.key_width + len(payload)] = payload
                pos += self._leaf_entry if node.is_leaf else self._internal_entry
            self.pool.mark_dirty(self.file_id, node.page_no)

    def _read_meta(self) -> tuple[int, int, int]:
        with self.pool.page(self.file_id, 0) as page:
            root, width, height = _META.unpack_from(page.data, 0)
        return root, width, height

    def _write_meta(self) -> None:
        with self.pool.page(self.file_id, 0) as page:
            _META.pack_into(page.data, 0, self.root_page, self.key_width, self.height)
            self.pool.mark_dirty(self.file_id, 0)

    def _check_key(self, key: bytes) -> None:
        if len(key) != self.key_width:
            raise StorageError(
                f"key must be {self.key_width} bytes, got {len(key)}"
            )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify structural invariants; raises :class:`StorageError`.

        Checked: key ordering inside nodes, separator bounds, uniform leaf
        depth, and the leaf sibling chain covering all entries in order.
        """
        leaves: list[int] = []
        self._check_subtree(self.root_page, None, None, self.height, leaves)
        # leaf chain must visit exactly the leaves found by the tree walk
        chained = []
        node = self._read_node(self._leftmost_leaf())
        while True:
            chained.append(node.page_no)
            if node.link == _NO_LINK:
                break
            node = self._read_node(node.link)
        if chained != leaves:
            raise StorageError(f"leaf chain {chained} != tree leaves {leaves}")
        all_keys = [k for k, __ in self.items()]
        if all_keys != sorted(all_keys):
            raise StorageError("leaf chain is not globally sorted")

    def _leftmost_leaf(self) -> int:
        node = self._read_node(self.root_page)
        while not node.is_leaf:
            node = self._read_node(node.link)
        return node.page_no

    def _check_subtree(self, page_no: int, lo: bytes | None, hi: bytes | None,
                       level: int, leaves: list[int]) -> None:
        node = self._read_node(page_no)
        keys = node.keys
        if keys != sorted(keys):
            raise StorageError(f"node {page_no}: keys out of order")
        for key in keys:
            if lo is not None and key < lo:
                raise StorageError(f"node {page_no}: key below separator bound")
            if hi is not None and key >= hi:
                raise StorageError(f"node {page_no}: key above separator bound")
        if node.is_leaf:
            if level != 1:
                raise StorageError(f"leaf {page_no} at level {level}; depth not uniform")
            leaves.append(page_no)
            return
        children = [node.link] + [_CHILD.unpack(p)[0] for p in node.payloads]
        bounds = [lo] + keys + [hi]
        for i, child in enumerate(children):
            self._check_subtree(child, bounds[i], bounds[i + 1], level - 1, leaves)
