"""Gemstone-style multi-component path indexes [Maie86a] (Section 7.2).

Gemstone maintains an index on a path like ``Emp1.dept.org.name`` as a
series of *index components*, each a B+-tree:

* a terminal component mapping field values to the objects holding them
  (``name -> ORG OIDs``), and
* one component per link mapping referenced objects to their referencers
  (``ORG OID -> DEPT OIDs``, ``DEPT OID -> EMP OIDs``).

An associative lookup therefore traverses one B+-tree per component --
"an associative lookup on Emp1.dept.org.name ... would involve traversing
three B+-tree indexes" -- whereas an index on *replicated* data maps
terminal values straight to source objects in a single traversal.  That
difference is exactly what the ablation benchmark measures.

This comparator supports bulk build and lookup (the paper's comparison is
about lookup I/O; maintenance comparisons are out of scope and documented
as such in DESIGN.md).
"""

from __future__ import annotations

from repro.errors import InvalidPathError
from repro.index.btree import BPlusTree
from repro.index.keycodec import (
    MAX_OID_SUFFIX,
    MIN_OID_SUFFIX,
    encode_key,
    key_width_for,
)
from repro.storage.oid import OID


class _OidPairComponent:
    """One link component: parent OID -> child OIDs (composite keys)."""

    def __init__(self, pool, file_id: int) -> None:
        self.tree = BPlusTree(pool, file_id, key_width=16)

    def insert(self, parent: OID, child: OID) -> None:
        key = parent.pack() + child.pack()
        if self.tree.search(key) is None:
            self.tree.insert(key, child)

    def children(self, parent: OID) -> list[OID]:
        prefix = parent.pack()
        return [
            oid
            for __key, oid in self.tree.range_scan(
                prefix + MIN_OID_SUFFIX, prefix + MAX_OID_SUFFIX
            )
        ]


class _TerminalComponent:
    """The value component: terminal value -> terminal-object OIDs."""

    def __init__(self, pool, file_id: int, field_def) -> None:
        self.field = field_def
        self.tree = BPlusTree(pool, file_id, key_width=key_width_for(field_def) + 8)

    def insert(self, value, oid: OID) -> None:
        key = encode_key(self.field, value) + oid.pack()
        if self.tree.search(key) is None:
            self.tree.insert(key, oid)

    def holders(self, value) -> list[OID]:
        prefix = encode_key(self.field, value)
        return [
            oid
            for __key, oid in self.tree.range_scan(
                prefix + MIN_OID_SUFFIX, prefix + MAX_OID_SUFFIX
            )
        ]


class GemstonePathIndex:
    """A multi-component path index over one reference path."""

    def __init__(self, db, path_text: str) -> None:
        from repro.schema.paths import resolve_path

        self.db = db
        self.resolved = resolve_path(
            path_text, db.catalog.set_type_of, db.registry.get
        )
        if self.resolved.is_full_object:
            raise InvalidPathError("a path index needs a scalar terminal field")
        terminal_field = db.registry.get(self.resolved.terminal_type).field_def(
            self.resolved.terminal
        )
        pool = db.storage.pool
        self.terminal = _TerminalComponent(
            pool, db.storage.disk.create_file(), terminal_field
        )
        #: link components, outermost (source-set side) first
        self.links = [
            _OidPairComponent(pool, db.storage.disk.create_file())
            for __ in self.resolved.ref_chain
        ]
        self.build()

    @property
    def component_count(self) -> int:
        """B+-trees traversed per associative lookup."""
        return 1 + len(self.links)

    def build(self) -> None:
        """Populate all components from the current database state."""
        source = self.db.catalog.get_set(self.resolved.source_set)
        chain = self.resolved.ref_chain
        for oid, obj in source.scan():
            current_oid, current = oid, obj
            broken = False
            for i, ref_name in enumerate(chain):
                target = current.ref(ref_name)
                if target is None:
                    broken = True
                    break
                self.links[i].insert(target, current_oid)
                current_oid, current = target, self.db.store.read(target)
            if not broken:
                self.terminal.insert(current.values[self.resolved.terminal], current_oid)

    def lookup(self, value) -> list[OID]:
        """Associative lookup: one B+-tree traversal per component."""
        frontier = self.terminal.holders(value)
        for component in reversed(self.links):
            next_frontier: list[OID] = []
            for oid in frontier:
                next_frontier.extend(component.children(oid))
            frontier = next_frontier
        return sorted(frontier)
