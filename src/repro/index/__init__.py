"""Indexing: disk-based B+-trees, secondary indexes, and path indexes."""

from repro.index.btree import BPlusTree
from repro.index.keycodec import (
    decode_char,
    decode_float,
    decode_int,
    decode_key,
    encode_char,
    encode_float,
    encode_int,
    encode_key,
    key_width_for,
)
from repro.index.secondary import SecondaryIndex

__all__ = [
    "BPlusTree",
    "SecondaryIndex",
    "decode_char",
    "decode_float",
    "decode_int",
    "decode_key",
    "encode_char",
    "encode_float",
    "encode_int",
    "encode_key",
    "key_width_for",
]
