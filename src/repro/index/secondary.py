"""Secondary indexes: field-value -> OID mappings over a B+-tree.

A :class:`SecondaryIndex` indexes one (possibly hidden / replicated) field
of one set.  Non-unique field values are handled with *composite keys*: the
encoded field value suffixed by the entry's packed OID, so every tree key
is unique and equal values cluster contiguously in key order.

Whether an index is *clustered* is a property of the indexed file, not of
the tree: a clustered index is one whose key order matches the file's
physical order (the paper's second analysis setting).  The flag is carried
here so the planner and the cost model can reason about it.
"""

from __future__ import annotations

from typing import Iterator

from repro.index.btree import BPlusTree
from repro.index.keycodec import (
    MAX_OID_SUFFIX,
    MIN_OID_SUFFIX,
    decode_key,
    encode_key,
    key_width_for,
)
from repro.objects.types import FieldDef
from repro.storage.buffer import BufferPool
from repro.storage.oid import OID
from repro.telemetry.metrics import NULL_METRICS


class SecondaryIndex:
    """An index on one field of one set."""

    def __init__(self, name: str, pool: BufferPool, file_id: int,
                 field: FieldDef, set_name: str, clustered: bool = False,
                 metrics=None) -> None:
        self.name = name
        self.field = field
        self.set_name = set_name
        self.clustered = clustered
        self.value_width = key_width_for(field)
        self.tree = BPlusTree(pool, file_id, self.value_width + 8)
        # Running catalog statistics for the (opt-in) cost-based planner.
        # The count is exact; min/max only ever widen (standard stale-stats
        # behaviour: deletes do not shrink them).
        self.stat_count = 0
        self.stat_min = None
        self.stat_max = None
        self.bind_metrics(metrics)

    def bind_metrics(self, metrics) -> None:
        """Resolve this index's counters in ``metrics`` (also used when an
        index is reconstructed outside ``__init__``, e.g. snapshot restore)."""
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_lookups = metrics.counter(
            "index_lookups_total", "exact-match index probes")
        self._m_range_scans = metrics.counter(
            "index_range_scans_total", "index range scans started")
        self._m_inserts = metrics.counter(
            "index_inserts_total", "index entry inserts")
        self._m_deletes = metrics.counter(
            "index_deletes_total", "index entry deletes")

    # -- maintenance --------------------------------------------------------

    def insert(self, value, oid: OID) -> None:
        """Add an entry for ``oid`` under ``value``."""
        self._m_inserts.inc(index=self.name)
        self.tree.insert(self._composite(value, oid), oid)
        self._note_value(value)
        self.stat_count += 1

    def delete(self, value, oid: OID) -> bool:
        """Remove the entry for ``(value, oid)``; returns presence."""
        self._m_deletes.inc(index=self.name)
        removed = self.tree.delete(self._composite(value, oid))
        if removed:
            self.stat_count -= 1
        return removed

    def _note_value(self, value) -> None:
        if self.stat_min is None or value < self.stat_min:
            self.stat_min = value
        if self.stat_max is None or value > self.stat_max:
            self.stat_max = value

    def update(self, old_value, new_value, oid: OID) -> None:
        """Move ``oid`` from ``old_value`` to ``new_value``."""
        if old_value == new_value:
            return
        self.delete(old_value, oid)
        self.insert(new_value, oid)

    def bulk_load(self, pairs) -> None:
        """Build the (empty) index bottom-up from ``(value, oid)`` pairs.

        The pairs may arrive in any order; they are sorted by composite key
        here so every tree page is written exactly once.
        """
        pairs = list(pairs)
        self._m_inserts.inc(len(pairs), index=self.name)
        entries = sorted(
            (self._composite(value, oid), oid) for value, oid in pairs
        )
        self.tree.bulk_fill(iter(entries))
        for value, __oid in pairs:
            self._note_value(value)
        self.stat_count += len(pairs)

    # -- lookups ------------------------------------------------------------

    def lookup(self, value) -> list[OID]:
        """All OIDs stored under exactly ``value``."""
        self._m_lookups.inc(index=self.name)
        prefix = encode_key(self.field, value)
        return [
            oid
            for __, oid in self.tree.range_scan(
                prefix + MIN_OID_SUFFIX, prefix + MAX_OID_SUFFIX
            )
        ]

    def range(self, lo=None, hi=None, include_hi: bool = True) -> Iterator[tuple[object, OID]]:
        """Yield ``(value, oid)`` for lo <= value (<=|<) hi, in value order."""
        self._m_range_scans.inc(index=self.name)
        return self._range_iter(lo, hi, include_hi)

    def _range_iter(self, lo, hi, include_hi: bool) -> Iterator[tuple[object, OID]]:
        lo_key = encode_key(self.field, lo) + MIN_OID_SUFFIX if lo is not None else None
        if hi is None:
            hi_key, tree_inclusive = None, True
        elif include_hi:
            hi_key, tree_inclusive = encode_key(self.field, hi) + MAX_OID_SUFFIX, True
        else:
            # The smallest possible composite for value ``hi`` acts as an
            # exclusive bound (real OID suffixes are always larger).
            hi_key, tree_inclusive = encode_key(self.field, hi) + MIN_OID_SUFFIX, False
        for key, oid in self.tree.range_scan(lo_key, hi_key, include_hi=tree_inclusive):
            yield decode_key(self.field, key[: self.value_width]), oid

    def items(self) -> Iterator[tuple[object, OID]]:
        """All entries in value order."""
        return self.range()

    def rebuild_stats(self) -> None:
        """Recompute the running statistics with one leaf-chain walk (used
        after snapshot load and crash recovery, when the in-memory numbers
        no longer describe the on-disk tree)."""
        self.stat_count = 0
        self.stat_min = None
        self.stat_max = None
        for value, __oid in self.items():
            self.stat_count += 1
            if self.stat_min is None:
                self.stat_min = value
            self.stat_max = value

    def count(self) -> int:
        """Number of entries."""
        return self.tree.count()

    @property
    def height(self) -> int:
        """Current height of the underlying tree."""
        return self.tree.height

    def _composite(self, value, oid: OID) -> bytes:
        return encode_key(self.field, value) + oid.pack()
