"""``repro.server``: the concurrent client/server layer.

The engine itself (:class:`repro.schema.database.Database`) is a single
in-process session.  This package turns it into a multi-client database:

* :mod:`repro.server.protocol` -- the length-prefixed, CRC'd JSON frame
  format both sides speak (the WAL's ``FRWAL001`` discipline, on a wire);
* :mod:`repro.server.locks`    -- a set-granularity reader-writer lock
  manager; a statement's footprint is computed *before* execution from
  its plan plus the replication catalog, and lock cycles are broken by a
  wait-for-graph deadlock detector that aborts the youngest waiter;
* :mod:`repro.server.session`  -- per-connection session state and the
  bounded worker pool statements execute on;
* :mod:`repro.server.service`  -- the threaded TCP server
  (``python -m repro.server --port ...``) with admission control and
  graceful drain;
* :mod:`repro.server.client`   -- the blocking client library the shell's
  ``--connect host:port`` flag reuses; mints trace ids and stitches the
  server's span trees under a local ``client_request`` root;
* :mod:`repro.server.httpexpo` -- the HTTP observability sidecar
  (``--metrics-port N``): Prometheus /metrics, JSON /health and /slow;
* :mod:`repro.server.top`      -- the live dashboard over the ``stats``
  verb (``python -m repro.server.top --connect host:port``, or ``\\top``
  in a connected shell).
"""

from repro.server.client import Client, ClientResult, RoutedClient, connect
from repro.server.httpexpo import MetricsHTTPServer
from repro.server.locks import LockFootprint, LockManager, footprint_for_statement
from repro.server.replog import ReplicationHub, ReplicationLog
from repro.server.service import Server
from repro.server.session import Session, SessionManager

__all__ = [
    "Client",
    "ClientResult",
    "connect",
    "LockFootprint",
    "LockManager",
    "MetricsHTTPServer",
    "ReplicationHub",
    "ReplicationLog",
    "RoutedClient",
    "footprint_for_statement",
    "Server",
    "Session",
    "SessionManager",
]
