"""Footprint-admission scheduling: concurrent statements, one engine.

Historically the served engine ran one statement at a time under a
single global latch -- correct, and the single biggest serialization
point in the server (the old ``engine_latch`` wait event).  The engine
internals are now thread-safe at their natural grain (per-frame buffer
latches, a short WAL append mutex with group commit, locked metrics),
so execution itself can overlap.  What remains is a *scheduling* rule:

    a statement whose 2PL footprint has been fully granted may execute
    immediately, concurrently with any other granted statement.

The lock manager already guarantees that two granted footprints do not
conflict -- every footprint includes a shared schema lock, and writers
hold exclusive locks on the sets they mutate -- so overlapping granted
statements touch disjoint (or read-only-shared) data.  Admission is
therefore a *reader-writer gate*, not a mutex:

* **shared mode** (statement admission): taken by every statement after
  its locks are granted, for the duration of execution.  Any number of
  statements hold it together; ``concurrent_statements`` counts them.
* **exclusive mode** (engine quiesce): drains the engine to zero active
  statements and keeps new ones out.  Used by the background doctor
  refresh, failover promotion, and test harnesses that need a frozen
  engine -- exactly the callers that used to grab the global latch
  directly via ``with sessions.latch:``, which still works verbatim
  because :class:`EngineGate` keeps the context-manager surface (and
  the ``latch`` attribute name) of the lock it replaced.

Lock ordering (see ARCHITECTURE.md): 2PL locks are acquired *before*
entering the gate and never inside it, and the exclusive side takes no
2PL locks at all -- so active statements always drain and the gate can
never deadlock against the lock manager.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.waitevents import ADMISSION_WAIT, NULL_WAITS

__all__ = ["EngineGate", "AdmissionController", "AdmissionGrant"]


class EngineGate:
    """A writer-priority reader-writer gate over the engine.

    Shared entries are statement admissions; the exclusive side (used
    via the plain ``with gate:`` context-manager protocol, or
    ``acquire()``/``release()``) quiesces the engine.  Exclusive mode is
    reentrant for its owner thread, and a thread holding the gate
    exclusively may also enter shared mode (its own statements run
    against the quiesced engine) -- both mirror what the old reentrant
    global latch allowed.

    Writer priority: once an exclusive requester is waiting, new shared
    entries queue behind it, so a doctor refresh cannot be starved by a
    stream of short statements.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        #: statements currently admitted (shared holders)
        self._active = 0
        #: threads blocked in :meth:`enter_shared`
        self._queued = 0
        self._excl_owner: int | None = None
        self._excl_count = 0
        self._excl_waiting = 0

    # -- shared (statement) side -------------------------------------------

    def enter_shared(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._excl_owner == me:
                # the quiescing thread running its own statement
                self._active += 1
                return
            self._queued += 1
            try:
                while self._excl_owner is not None or self._excl_waiting:
                    self._cond.wait()
                self._active += 1
            finally:
                self._queued -= 1

    def exit_shared(self) -> None:
        with self._cond:
            self._active -= 1
            if self._active == 0:
                self._cond.notify_all()

    # -- exclusive (quiesce) side ------------------------------------------

    def acquire(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._excl_owner == me:
                self._excl_count += 1
                return
            self._excl_waiting += 1
            try:
                while self._excl_owner is not None or self._active:
                    self._cond.wait()
                self._excl_owner = me
                self._excl_count = 1
            finally:
                self._excl_waiting -= 1

    def release(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._excl_owner != me:
                raise RuntimeError("EngineGate.release() by a non-owner")
            self._excl_count -= 1
            if self._excl_count == 0:
                self._excl_owner = None
                self._cond.notify_all()

    def __enter__(self) -> "EngineGate":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # -- introspection (advisory reads, no lock) ---------------------------

    @property
    def active(self) -> int:
        """Statements currently executing (shared holders)."""
        return self._active

    @property
    def queued(self) -> int:
        """Threads currently blocked waiting for admission."""
        return self._queued


class AdmissionGrant:
    """What one admitted statement learns about its wait."""

    __slots__ = ("waited",)

    def __init__(self, waited: float) -> None:
        #: seconds spent blocked before admission (0.0 when uncontended)
        self.waited = waited


class AdmissionController:
    """The gate plus its observability: wait attribution and gauges.

    * ``concurrent_statements``      -- statements executing right now;
    * ``concurrent_statements_peak`` -- high-water mark (ratchet; the
      concurrency stress soak asserts it exceeded 1);
    * ``admission_queue_depth``      -- statements blocked at the gate.

    Admission waits feed the ``admission_wait`` event (histogram +
    per-statement ledger) exactly like the engine latch they replace.
    """

    def __init__(self, gate: EngineGate | None = None, waits=None,
                 metrics=None) -> None:
        self.gate = gate if gate is not None else EngineGate()
        self.waits = waits if waits is not None else NULL_WAITS
        metrics = metrics if metrics is not None else NULL_METRICS
        self._g_active = metrics.gauge(
            "concurrent_statements", "statements executing concurrently")
        self._g_peak = metrics.gauge(
            "concurrent_statements_peak",
            "high-water mark of concurrently executing statements")
        self._g_queued = metrics.gauge(
            "admission_queue_depth", "statements waiting for admission")

    @contextmanager
    def admitted(self):
        """Admit one statement for the duration of the block.

        Yields an :class:`AdmissionGrant`; the caller folds its
        ``waited`` into session accounting.  Hold time is charged to the
        global occupancy counter on exit.
        """
        waits = self.waits
        gate = self.gate
        started = time.perf_counter()
        token = waits.mark_waiting(ADMISSION_WAIT)
        self._g_queued.set(gate.queued + 1)
        try:
            gate.enter_shared()
        finally:
            self._g_queued.set(gate.queued)
            waits.unmark_waiting(token)
        waited = time.perf_counter() - started
        waits.admission_granted(waited)
        active = gate.active
        self._g_active.set(active)
        self._g_peak.set_max(active)
        held_from = time.perf_counter()
        try:
            yield AdmissionGrant(waited)
        finally:
            gate.exit_shared()
            self._g_active.set(gate.active)
            waits.admission_released(time.perf_counter() - held_from)
