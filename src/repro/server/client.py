"""The blocking client library.

::

    from repro.server import connect

    with connect("127.0.0.1", 7878) as client:
        result = client.execute("retrieve (Emp1.name, Emp1.dept.name)")
        for row in result.rows:
            print(row)
        print(client.meta("stats"))

``execute`` returns a :class:`ClientResult` for row-producing statements
(shaped like the engine's ``QueryResult`` so ``repro.cli.render_result``
renders either), a plain string for text results (``explain``), and the
detail string for acknowledgements (DDL, ``begin``/``commit``).  Server
errors surface as :class:`~repro.errors.RemoteError` with a stable
``.code`` (``lock_timeout``, ``deadlock``, ``server_busy``, ...).
"""

from __future__ import annotations

import socket
from dataclasses import dataclass

from repro.errors import ProtocolError, RemoteError
from repro.server import protocol


@dataclass(frozen=True)
class ClientIO:
    """Wire copy of a result's physical I/O counters."""

    physical_reads: int = 0
    physical_writes: int = 0
    total_io: int = 0


@dataclass(frozen=True)
class ClientResult:
    """Rows plus metadata, shaped like the engine's QueryResult."""

    columns: tuple
    rows: list
    plan: str
    io: ClientIO

    def __len__(self) -> int:
        return len(self.rows)

    @classmethod
    def from_wire(cls, result: dict) -> "ClientResult":
        io = result.get("io") or {}
        return cls(
            columns=tuple(result.get("columns") or ()),
            rows=[tuple(row) for row in result.get("rows") or []],
            plan=result.get("plan", ""),
            io=ClientIO(io.get("reads", 0), io.get("writes", 0),
                        io.get("total", 0)),
        )


class Client:
    """One blocking connection to a repro server."""

    def __init__(self, sock: socket.socket, session_id: int) -> None:
        self._sock = sock
        self.session_id = session_id
        self._next_id = 0
        self._closed = False

    # -- plumbing ----------------------------------------------------------

    def _request(self, kind: str, **fields) -> dict:
        if self._closed:
            raise ProtocolError("client is closed")
        self._next_id += 1
        request = {"id": self._next_id, "kind": kind, **fields}
        protocol.write_frame(self._sock, request)
        response = protocol.read_frame(self._sock)
        if response.get("id") not in (self._next_id, 0):
            raise ProtocolError(
                f"response id {response.get('id')} for request {self._next_id}")
        if not response.get("ok"):
            error = response.get("error") or {}
            raise RemoteError(error.get("code", "internal_error"),
                              error.get("message", "unknown server error"))
        return response.get("result") or {}

    # -- API ---------------------------------------------------------------

    def execute(self, statement: str):
        """Run one statement; ClientResult for rows, str otherwise."""
        result = self._request("statement", statement=statement)
        kind = result.get("kind")
        if kind == "rows":
            return ClientResult.from_wire(result)
        if kind == "text":
            return result.get("text", "")
        return result.get("detail", "ok")

    def meta(self, command: str, *args: str) -> str:
        """Run a server-side meta command; returns its rendered text."""
        result = self._request("meta", command=command, args=list(args))
        return result.get("text", "")

    def begin(self) -> None:
        self.execute("begin")

    def commit(self) -> None:
        self.execute("commit")

    def abort(self) -> None:
        self.execute("abort")

    def stats(self) -> dict:
        """Server-level stats (connections, sessions, lock counters)."""
        return self._request("stats").get("stats") or {}

    def ping(self) -> bool:
        return self._request("ping").get("kind") == "pong"

    def shutdown(self) -> str:
        """Ask the server to drain and stop; closes this client too."""
        try:
            result = self._request("shutdown")
            return result.get("text", "")
        finally:
            self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            protocol.write_frame(self._sock, {"id": 0, "kind": "close"})
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(host: str, port: int, timeout: float | None = None) -> Client:
    """Open a connection and validate the server's handshake."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        hello = protocol.read_frame(sock)
        protocol.check_handshake(hello)
    except BaseException:
        sock.close()
        raise
    return Client(sock, hello.get("session", 0))
