"""The blocking client library.

::

    from repro.server import connect

    with connect("127.0.0.1", 7878) as client:
        result = client.execute("retrieve (Emp1.name, Emp1.dept.name)")
        for row in result.rows:
            print(row)
        print(client.meta("stats"))

``execute`` returns a :class:`ClientResult` for row-producing statements
(shaped like the engine's ``QueryResult`` so ``repro.cli.render_result``
renders either), a plain string for text results (``explain``), and the
detail string for acknowledgements (DDL, ``begin``/``commit``).  Server
errors surface as :class:`~repro.errors.RemoteError` with a stable
``.code`` (``lock_timeout``, ``deadlock``, ``server_busy``, ...).

Cross-process tracing: with ``client.trace_enabled = True`` every
``execute`` mints a ``trace_id``, sends it in the request frame, and
stitches the server's span tree under a local ``client_request`` root
(span id 0); the difference between the root's wall time and the server
``statement`` span is wire + queue time.  Stitched traces are kept on
``client.traces`` (bounded) and the freshest on ``client.last_trace``.

Resilience: ``connect`` takes separate ``connect_timeout`` and
``read_timeout`` bounds, and a transient connection drop (reset, mid-
frame close, read timeout) is retried **once** after a short backoff --
but only for requests that are safe to repeat: reads (``retrieve`` /
``explain``), meta commands, and the status verbs.  Writes, DDL, and
anything inside an explicit transaction are never resent (the server may
have applied them before the drop); those surface the original error.

Read routing: :class:`RoutedClient` fans reads out over replicas
round-robin and transparently falls back to the primary when a replica
answers ``replica_stale`` / ``read_only_replica`` or drops the
connection; writes always go to the primary.
"""

from __future__ import annotations

import itertools
import secrets
import socket
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ProtocolError, RemoteError
from repro.server import protocol

#: stitched traces retained per client (oldest dropped first).
_TRACE_KEEP = 64


@dataclass(frozen=True)
class ClientIO:
    """Wire copy of a result's physical I/O counters."""

    physical_reads: int = 0
    physical_writes: int = 0
    total_io: int = 0


@dataclass(frozen=True)
class ClientResult:
    """Rows plus metadata, shaped like the engine's QueryResult."""

    columns: tuple
    rows: list
    plan: str
    io: ClientIO
    #: the stitched span tree when the statement was traced, else None.
    trace: dict | None = field(default=None, compare=False)
    #: result-cache disposition ("hit" | "miss" | "bypass"), or None.
    cache: str | None = field(default=None, compare=False)

    def __len__(self) -> int:
        return len(self.rows)

    @classmethod
    def from_wire(cls, result: dict,
                  trace: dict | None = None) -> "ClientResult":
        io = result.get("io") or {}
        return cls(
            columns=tuple(result.get("columns") or ()),
            rows=[tuple(row) for row in result.get("rows") or []],
            plan=result.get("plan", ""),
            io=ClientIO(io.get("reads", 0), io.get("writes", 0),
                        io.get("total", 0)),
            trace=trace,
            cache=result.get("cache"),
        )


#: statement starters a retry can safely repeat (reads only).
_RETRYABLE_STATEMENTS = ("retrieve", "explain")
#: request kinds a retry can safely repeat.
_RETRYABLE_KINDS = ("ping", "stats", "statements", "meta", "repl_status",
                    "promote", "ash")


class Client:
    """One blocking connection to a repro server."""

    def __init__(self, sock: socket.socket, session_id: int,
                 host: str | None = None, port: int | None = None,
                 connect_timeout: float | None = None,
                 read_timeout: float | None = None,
                 retry: bool = True, retry_backoff: float = 0.2) -> None:
        self._sock = sock
        self.session_id = session_id
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        #: retry transient connection drops once (idempotent requests only)
        self.retry = retry
        self.retry_backoff = retry_backoff
        self._next_id = 0
        self._closed = False
        self._in_txn = False
        #: when True every execute() mints and propagates a trace_id.
        self.trace_enabled = False
        #: stitched traces, oldest first; each is {"trace_id", "spans"}.
        self.traces: deque = deque(maxlen=_TRACE_KEEP)

    @property
    def last_trace(self) -> dict | None:
        """The most recent stitched trace, or None."""
        return self.traces[-1] if self.traces else None

    # -- plumbing ----------------------------------------------------------

    def _request(self, kind: str, **fields) -> dict:
        if self._closed:
            raise ProtocolError("client is closed")
        try:
            return self._roundtrip(kind, fields)
        except (OSError, ProtocolError):
            if not self._may_retry(kind, fields):
                raise
            # one transparent retry on a fresh connection; anything that
            # fails again surfaces
            time.sleep(self.retry_backoff)
            self._reconnect()
            return self._roundtrip(kind, fields)

    def _roundtrip(self, kind: str, fields: dict) -> dict:
        self._next_id += 1
        request = {"id": self._next_id, "kind": kind, **fields}
        protocol.write_frame(self._sock, request)
        response = protocol.read_frame(self._sock)
        if response.get("id") not in (self._next_id, 0):
            raise ProtocolError(
                f"response id {response.get('id')} for request {self._next_id}")
        if not response.get("ok"):
            error = response.get("error") or {}
            raise RemoteError(error.get("code", "internal_error"),
                              error.get("message", "unknown server error"))
        return response.get("result") or {}

    def _may_retry(self, kind: str, fields: dict) -> bool:
        """Whether a dropped request is safe to resend.

        Never inside an explicit transaction -- the reconnected socket is
        a *new* session, so the old session's locks and txn state are
        gone -- and never for statements that mutate (the server may have
        applied them before the connection died).
        """
        if not self.retry or self._closed or self._in_txn:
            return False
        if self.host is None or self.port is None:
            return False
        if kind in _RETRYABLE_KINDS:
            return True
        if kind == "statement":
            head = (fields.get("statement") or "").strip().split(None, 1)
            return bool(head) and head[0].lower() in _RETRYABLE_STATEMENTS
        return False

    def _reconnect(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock, self.session_id = _dial(
            self.host, self.port, self.connect_timeout, self.read_timeout)

    # -- API ---------------------------------------------------------------

    def execute(self, statement: str):
        """Run one statement; ClientResult for rows, str otherwise."""
        trace = None
        if self.trace_enabled:
            trace_id = secrets.token_hex(8)
            start_ts = time.time()
            started = time.perf_counter()
            result = self._request("statement", statement=statement,
                                   trace_id=trace_id)
            duration_ms = (time.perf_counter() - started) * 1000.0
            trace = self._stitch_trace(trace_id, statement, result,
                                       start_ts, duration_ms)
            self.traces.append(trace)
        else:
            result = self._request("statement", statement=statement)
        kind = result.get("kind")
        if kind == "rows":
            return ClientResult.from_wire(result, trace=trace)
        if kind == "text":
            return result.get("text", "")
        return result.get("detail", "ok")

    def _stitch_trace(self, trace_id: str, statement: str, result: dict,
                      start_ts: float, duration_ms: float) -> dict:
        """Graft the server's span tree under a local client root.

        The root takes span id 0 (server span ids start at 1, so ids never
        collide) and server roots are re-parented under it; root wall time
        minus the server ``statement`` span is wire + queue-admission time.
        """
        root = {
            "trace_id": trace_id,
            "span_id": 0,
            "parent_id": None,
            "name": "client_request",
            "attrs": {"statement": " ".join(statement.split()),
                      "session_id": self.session_id},
            "start_ts": round(start_ts, 6),
            "duration_ms": round(duration_ms, 3),
            "io": {},
            "self_io": {},
        }
        spans = [root]
        for span in (result.get("trace") or {}).get("spans") or []:
            span = dict(span)
            if span.get("parent_id") is None:
                span["parent_id"] = 0
            spans.append(span)
        return {"trace_id": trace_id, "spans": spans}

    def meta(self, command: str, *args: str) -> str:
        """Run a server-side meta command; returns its rendered text."""
        result = self._request("meta", command=command, args=list(args))
        return result.get("text", "")

    def begin(self) -> None:
        self.execute("begin")
        self._in_txn = True

    def commit(self) -> None:
        try:
            self.execute("commit")
        finally:
            self._in_txn = False

    def abort(self) -> None:
        try:
            self.execute("abort")
        finally:
            self._in_txn = False

    def stats(self) -> dict:
        """Server-level stats (connections, sessions, lock counters)."""
        return self._request("stats").get("stats") or {}

    def statements(self) -> dict:
        """Per-fingerprint statement statistics plus the replication
        ledger (``{"fingerprints": {...}, "ledger": [...]}``)."""
        return self._request("statements").get("statements") or {}

    def ash(self, window_s: float | None = None,
            fingerprint: str | None = None, event: str | None = None,
            limit: int = 50) -> dict:
        """The server's active session history: sampled wait states with
        an event/fingerprint profile, filterable by time window,
        fingerprint, or wait event (``event="lock"`` matches every
        ``lock:<resource>``)."""
        fields: dict = {"limit": limit}
        if window_s is not None:
            fields["window_s"] = window_s
        if fingerprint is not None:
            fields["fingerprint"] = fingerprint
        if event is not None:
            fields["event"] = event
        return self._request("ash", **fields).get("ash") or {}

    def cache(self) -> dict:
        """The server's derived-result cache snapshot (entries, bytes,
        hit/miss/invalidation counters, hottest entries)."""
        return self._request("cache").get("cache") or {}

    def ping(self) -> bool:
        return self._request("ping").get("kind") == "pong"

    def replication(self) -> dict:
        """Replication topology / lag as the server reports it."""
        return self._request("repl_status").get("replication") or {}

    def promote(self) -> dict:
        """Promote a follower to primary (errors on a non-replica)."""
        return self._request("promote")

    def shutdown(self) -> str:
        """Ask the server to drain and stop; closes this client too."""
        try:
            result = self._request("shutdown")
            return result.get("text", "")
        finally:
            self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            protocol.write_frame(self._sock, {"id": 0, "kind": "close"})
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _dial(host: str, port: int, connect_timeout: float | None,
          read_timeout: float | None) -> tuple[socket.socket, int]:
    """One handshake-validated connection; returns (socket, session_id)."""
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.settimeout(read_timeout)
    try:
        hello = protocol.read_frame(sock)
        protocol.check_handshake(hello)
    except BaseException:
        sock.close()
        raise
    return sock, hello.get("session", 0)


def connect(host: str, port: int, timeout: float | None = None,
            connect_timeout: float | None = None,
            read_timeout: float | None = None,
            retry: bool = True, retry_backoff: float = 0.2) -> Client:
    """Open a connection and validate the server's handshake.

    ``connect_timeout`` bounds the dial, ``read_timeout`` bounds every
    response wait (None: block forever); the legacy ``timeout`` argument
    feeds both when the specific one is unset.  Transient connection
    drops are retried once (idempotent requests only; ``retry=False``
    restores fail-fast behavior).
    """
    connect_timeout = timeout if connect_timeout is None else connect_timeout
    read_timeout = timeout if read_timeout is None else read_timeout
    sock, session_id = _dial(host, port, connect_timeout, read_timeout)
    return Client(sock, session_id, host=host, port=port,
                  connect_timeout=connect_timeout, read_timeout=read_timeout,
                  retry=retry, retry_backoff=retry_backoff)


class RoutedClient:
    """Primary plus read replicas behind one ``execute`` surface.

    Reads (``retrieve`` / ``explain``) round-robin over the replicas;
    everything else goes to the primary.  A replica that answers
    ``replica_stale`` / ``read_only_replica``, or whose connection
    drops, is skipped for that read and the primary answers instead --
    the caller never sees the redirect.  Inside an explicit transaction
    every statement pins to the primary (the replicas know nothing of
    this session's locks).
    """

    def __init__(self, primary: tuple[str, int],
                 replicas: list[tuple[str, int]] | None = None,
                 **connect_kwargs) -> None:
        self._connect_kwargs = connect_kwargs
        self._primary_addr = primary
        self._replica_addrs = list(replicas or [])
        self._primary: Client | None = None
        self._replicas: dict[tuple[str, int], Client] = {}
        self._rr = itertools.cycle(range(max(1, len(self._replica_addrs))))
        self._in_txn = False

    # -- connections -------------------------------------------------------

    def primary(self) -> Client:
        if self._primary is None:
            self._primary = connect(*self._primary_addr,
                                    **self._connect_kwargs)
        return self._primary

    def _replica(self, addr: tuple[str, int]) -> Client:
        client = self._replicas.get(addr)
        if client is None:
            client = connect(*addr, **self._connect_kwargs)
            self._replicas[addr] = client
        return client

    # -- routing -----------------------------------------------------------

    def execute(self, statement: str):
        head = statement.strip().split(None, 1)
        first = head[0].lower() if head else ""
        if first == "begin":
            self._in_txn = True
        elif first in ("commit", "abort", "rollback"):
            self._in_txn = False
        if (self._replica_addrs and not self._in_txn
                and first in _RETRYABLE_STATEMENTS):
            addr = self._replica_addrs[next(self._rr)]
            try:
                return self._replica(addr).execute(statement)
            except RemoteError as exc:
                if exc.code not in ("replica_stale", "read_only_replica",
                                    "replica_resync"):
                    raise
            except (OSError, ProtocolError):
                self._replicas.pop(addr, None)
            # stale / refused / gone: the primary always has the truth
        return self.primary().execute(statement)

    def meta(self, command: str, *args: str) -> str:
        return self.primary().meta(command, *args)

    def close(self) -> None:
        for client in [self._primary, *self._replicas.values()]:
            if client is not None:
                client.close()
        self._primary = None
        self._replicas.clear()

    def __enter__(self) -> "RoutedClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
