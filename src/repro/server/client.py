"""The blocking client library.

::

    from repro.server import connect

    with connect("127.0.0.1", 7878) as client:
        result = client.execute("retrieve (Emp1.name, Emp1.dept.name)")
        for row in result.rows:
            print(row)
        print(client.meta("stats"))

``execute`` returns a :class:`ClientResult` for row-producing statements
(shaped like the engine's ``QueryResult`` so ``repro.cli.render_result``
renders either), a plain string for text results (``explain``), and the
detail string for acknowledgements (DDL, ``begin``/``commit``).  Server
errors surface as :class:`~repro.errors.RemoteError` with a stable
``.code`` (``lock_timeout``, ``deadlock``, ``server_busy``, ...).

Cross-process tracing: with ``client.trace_enabled = True`` every
``execute`` mints a ``trace_id``, sends it in the request frame, and
stitches the server's span tree under a local ``client_request`` root
(span id 0); the difference between the root's wall time and the server
``statement`` span is wire + queue time.  Stitched traces are kept on
``client.traces`` (bounded) and the freshest on ``client.last_trace``.
"""

from __future__ import annotations

import secrets
import socket
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ProtocolError, RemoteError
from repro.server import protocol

#: stitched traces retained per client (oldest dropped first).
_TRACE_KEEP = 64


@dataclass(frozen=True)
class ClientIO:
    """Wire copy of a result's physical I/O counters."""

    physical_reads: int = 0
    physical_writes: int = 0
    total_io: int = 0


@dataclass(frozen=True)
class ClientResult:
    """Rows plus metadata, shaped like the engine's QueryResult."""

    columns: tuple
    rows: list
    plan: str
    io: ClientIO
    #: the stitched span tree when the statement was traced, else None.
    trace: dict | None = field(default=None, compare=False)

    def __len__(self) -> int:
        return len(self.rows)

    @classmethod
    def from_wire(cls, result: dict,
                  trace: dict | None = None) -> "ClientResult":
        io = result.get("io") or {}
        return cls(
            columns=tuple(result.get("columns") or ()),
            rows=[tuple(row) for row in result.get("rows") or []],
            plan=result.get("plan", ""),
            io=ClientIO(io.get("reads", 0), io.get("writes", 0),
                        io.get("total", 0)),
            trace=trace,
        )


class Client:
    """One blocking connection to a repro server."""

    def __init__(self, sock: socket.socket, session_id: int) -> None:
        self._sock = sock
        self.session_id = session_id
        self._next_id = 0
        self._closed = False
        #: when True every execute() mints and propagates a trace_id.
        self.trace_enabled = False
        #: stitched traces, oldest first; each is {"trace_id", "spans"}.
        self.traces: deque = deque(maxlen=_TRACE_KEEP)

    @property
    def last_trace(self) -> dict | None:
        """The most recent stitched trace, or None."""
        return self.traces[-1] if self.traces else None

    # -- plumbing ----------------------------------------------------------

    def _request(self, kind: str, **fields) -> dict:
        if self._closed:
            raise ProtocolError("client is closed")
        self._next_id += 1
        request = {"id": self._next_id, "kind": kind, **fields}
        protocol.write_frame(self._sock, request)
        response = protocol.read_frame(self._sock)
        if response.get("id") not in (self._next_id, 0):
            raise ProtocolError(
                f"response id {response.get('id')} for request {self._next_id}")
        if not response.get("ok"):
            error = response.get("error") or {}
            raise RemoteError(error.get("code", "internal_error"),
                              error.get("message", "unknown server error"))
        return response.get("result") or {}

    # -- API ---------------------------------------------------------------

    def execute(self, statement: str):
        """Run one statement; ClientResult for rows, str otherwise."""
        trace = None
        if self.trace_enabled:
            trace_id = secrets.token_hex(8)
            start_ts = time.time()
            started = time.perf_counter()
            result = self._request("statement", statement=statement,
                                   trace_id=trace_id)
            duration_ms = (time.perf_counter() - started) * 1000.0
            trace = self._stitch_trace(trace_id, statement, result,
                                       start_ts, duration_ms)
            self.traces.append(trace)
        else:
            result = self._request("statement", statement=statement)
        kind = result.get("kind")
        if kind == "rows":
            return ClientResult.from_wire(result, trace=trace)
        if kind == "text":
            return result.get("text", "")
        return result.get("detail", "ok")

    def _stitch_trace(self, trace_id: str, statement: str, result: dict,
                      start_ts: float, duration_ms: float) -> dict:
        """Graft the server's span tree under a local client root.

        The root takes span id 0 (server span ids start at 1, so ids never
        collide) and server roots are re-parented under it; root wall time
        minus the server ``statement`` span is wire + queue-admission time.
        """
        root = {
            "trace_id": trace_id,
            "span_id": 0,
            "parent_id": None,
            "name": "client_request",
            "attrs": {"statement": " ".join(statement.split()),
                      "session_id": self.session_id},
            "start_ts": round(start_ts, 6),
            "duration_ms": round(duration_ms, 3),
            "io": {},
            "self_io": {},
        }
        spans = [root]
        for span in (result.get("trace") or {}).get("spans") or []:
            span = dict(span)
            if span.get("parent_id") is None:
                span["parent_id"] = 0
            spans.append(span)
        return {"trace_id": trace_id, "spans": spans}

    def meta(self, command: str, *args: str) -> str:
        """Run a server-side meta command; returns its rendered text."""
        result = self._request("meta", command=command, args=list(args))
        return result.get("text", "")

    def begin(self) -> None:
        self.execute("begin")

    def commit(self) -> None:
        self.execute("commit")

    def abort(self) -> None:
        self.execute("abort")

    def stats(self) -> dict:
        """Server-level stats (connections, sessions, lock counters)."""
        return self._request("stats").get("stats") or {}

    def statements(self) -> dict:
        """Per-fingerprint statement statistics plus the replication
        ledger (``{"fingerprints": {...}, "ledger": [...]}``)."""
        return self._request("statements").get("statements") or {}

    def ping(self) -> bool:
        return self._request("ping").get("kind") == "pong"

    def shutdown(self) -> str:
        """Ask the server to drain and stop; closes this client too."""
        try:
            result = self._request("shutdown")
            return result.get("text", "")
        finally:
            self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            protocol.write_frame(self._sock, {"id": 0, "kind": "close"})
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(host: str, port: int, timeout: float | None = None) -> Client:
    """Open a connection and validate the server's handshake."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        hello = protocol.read_frame(sock)
        protocol.check_handshake(hello)
    except BaseException:
        sock.close()
        raise
    return Client(sock, hello.get("session", 0))
