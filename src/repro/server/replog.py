"""The primary side of WAL shipping: the replication log and hub.

The paper replicates *fields* so readers avoid joins; this module
replicates the *process* so reads survive and scale past one engine
node.  Every committed statement on the primary becomes one
:class:`ReplicationEntry` in a retained, LSN-addressed
:class:`ReplicationLog`:

* **DML** entries carry the statement's redo records -- the WAL's
  ``BEGIN`` / ``ALLOC`` / ``PAGE_AFTER`` / ``COMMIT`` frames, base64 on
  the wire -- captured by a :attr:`WriteAheadLog.commit_listeners` hook
  the moment the commit is durable (under the engine latch, so entries
  are appended in commit order);
* **DDL** entries carry the statement text: DDL runs outside WAL
  statement scope (it checkpoints), so it ships logically and followers
  re-execute it -- deterministic, because both sides apply the same
  ordered stream to the same starting state.

The :class:`ReplicationHub` serves followers over the FRNET001
replication verbs (``repl_subscribe`` / ``repl_fetch`` / ``repl_status``):
long-poll record batches double as heartbeats, the ``applied_lsn`` each
fetch carries doubles as the ack, and with ``sync_replicas=K > 0`` a
write is only acknowledged to its client once K followers have *applied*
it -- the zero-acknowledged-write-loss contract the failover matrix
asserts.

The log is retention-bounded (``max_entries``): a follower that falls
behind the oldest retained entry gets :class:`ReplicaResyncError` and
must be re-seeded from a snapshot, exactly like a real system whose WAL
archive has been rotated away.
"""

from __future__ import annotations

import base64
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ReplicaResyncError, ReplicationLinkError
from repro.recovery.wal import WalRecord, WalRecordType
from repro.telemetry.metrics import NULL_METRICS

__all__ = ["FollowerState", "ReplicationEntry", "ReplicationHub",
           "ReplicationLog", "render_status"]


def render_status(status: dict) -> str:
    """Render a replication status dict (primary hub or follower) as the
    ``\\replication`` meta-command's text."""
    lines = []
    scalars = [(k, v) for k, v in status.items()
               if not isinstance(v, (list, dict))]
    lines.append("  ".join(f"{k} {v}" for k, v in scalars))
    followers = status.get("followers") or []
    for f in followers:
        lines.append(
            f"  follower #{f.get('id')} {f.get('name')}: "
            f"acked_lsn {f.get('acked_lsn')}  lag {f.get('lag')}  "
            f"fetches {f.get('fetches')}  "
            f"last_seen {f.get('last_seen_seconds')}s")
    if not followers and status.get("role") == "primary":
        lines.append("  (no followers subscribed)")
    link = status.get("link")
    if isinstance(link, dict):
        lines.append("  link: " + "  ".join(
            f"{k} {v}" for k, v in link.items()))
    return "\n".join(lines)


@dataclass(frozen=True)
class ReplicationEntry:
    """One committed statement, addressed by its stream LSN."""

    lsn: int
    kind: str            # "dml" | "ddl"
    note: str = ""       # the statement text (DML: the WAL begin note)
    frames: bytes = b""  # DML only: concatenated framed WalRecords
    #: DDL only: the primary's file-id cursor *before* the statement ran.
    #: Both engines allocate file ids sequentially, but transient query
    #: output files advance the cursor without shipping, so a follower
    #: adopts this cursor before re-executing the DDL -- the files it
    #: creates then get identical ids on both sides.
    next_file_id: int = 0

    def to_wire(self) -> dict:
        obj = {"lsn": self.lsn, "kind": self.kind, "note": self.note}
        if self.kind == "dml":
            obj["frames"] = base64.b64encode(self.frames).decode("ascii")
        else:
            obj["next_file_id"] = self.next_file_id
        return obj

    @classmethod
    def from_wire(cls, obj: dict) -> "ReplicationEntry":
        try:
            lsn = int(obj["lsn"])
            kind = str(obj["kind"])
            note = str(obj.get("note", ""))
            frames = base64.b64decode(obj.get("frames", "") or "")
            next_file_id = int(obj.get("next_file_id", 0) or 0)
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplicationLinkError(
                f"malformed replication entry: {exc}") from None
        if kind not in ("dml", "ddl"):
            raise ReplicationLinkError(
                f"unknown replication entry kind {kind!r}")
        return cls(lsn, kind, note, frames, next_file_id)

    def records(self) -> list[WalRecord]:
        """Decode a DML entry's redo records (WalError on damage)."""
        records: list[WalRecord] = []
        offset = 0
        while offset < len(self.frames):
            record, offset = WalRecord.decode(self.frames, offset)
            records.append(record)
        return records


class ReplicationLog:
    """A bounded, thread-safe, LSN-addressed log of committed statements.

    LSNs are assigned at append time and never reused; retention drops
    the oldest entries past ``max_entries`` but :attr:`last_lsn` keeps
    counting, so "where in the stream" stays meaningful forever.
    """

    def __init__(self, max_entries: int = 10_000) -> None:
        self.max_entries = max(1, max_entries)
        self._entries: list[ReplicationEntry] = []
        self._mutex = threading.Lock()
        self._grew = threading.Condition(self._mutex)
        self.last_lsn = 0
        #: entries dropped by retention (their LSNs are gone for good)
        self.dropped = 0

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    @property
    def oldest_lsn(self) -> int:
        """LSN of the oldest retained entry (0 when nothing retained)."""
        with self._mutex:
            return self._entries[0].lsn if self._entries else self.last_lsn + 1

    def append(self, kind: str, note: str = "", frames: bytes = b"",
               next_file_id: int = 0) -> ReplicationEntry:
        """Append one entry at the next LSN; wakes long-polling fetchers."""
        with self._grew:
            entry = ReplicationEntry(self.last_lsn + 1, kind, note, frames,
                                     next_file_id)
            self._push(entry)
            return entry

    def relay(self, entry: ReplicationEntry) -> None:
        """Append an entry that already owns its LSN (follower relays the
        primary's stream into its own log so it can serve the stream after
        a promotion).  The stream must stay gapless."""
        with self._grew:
            if entry.lsn != self.last_lsn + 1:
                raise ReplicationLinkError(
                    f"replication stream gap: relayed LSN {entry.lsn} after "
                    f"{self.last_lsn}")
            self._push(entry)

    def _push(self, entry: ReplicationEntry) -> None:
        self._entries.append(entry)
        self.last_lsn = entry.lsn
        overflow = len(self._entries) - self.max_entries
        if overflow > 0:
            del self._entries[:overflow]
            self.dropped += overflow
        self._grew.notify_all()

    def entries_after(self, lsn: int,
                      max_entries: int = 256) -> list[ReplicationEntry]:
        """Retained entries with LSN > ``lsn``, oldest first.

        Raises :class:`ReplicaResyncError` when retention already dropped
        some of the requested range -- the follower cannot catch up from
        this log and must re-seed from a snapshot.
        """
        with self._mutex:
            if not self._entries:
                if lsn < self.last_lsn:
                    raise ReplicaResyncError(
                        f"replication log retains nothing before LSN "
                        f"{self.last_lsn + 1}; follower at {lsn} must resync")
                return []
            if lsn + 1 < self._entries[0].lsn:
                raise ReplicaResyncError(
                    f"replication log starts at LSN {self._entries[0].lsn}; "
                    f"follower at {lsn} must resync from a snapshot")
            lo = len(self._entries) - (self.last_lsn - lsn)
            return list(self._entries[max(0, lo):max(0, lo) + max_entries])

    def wait_beyond(self, lsn: int, timeout: float) -> bool:
        """Block until the log grows past ``lsn`` (or ``timeout`` sec)."""
        deadline = time.perf_counter() + timeout
        with self._grew:
            while self.last_lsn <= lsn:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return False
                self._grew.wait(remaining)
            return True


@dataclass
class FollowerState:
    """What the primary knows about one subscribed follower."""

    id: int
    name: str
    acked_lsn: int = 0
    subscribed_at: float = 0.0
    last_seen: float = field(default_factory=time.perf_counter)
    fetches: int = 0

    def info(self, last_lsn: int) -> dict:
        return {
            "id": self.id,
            "name": self.name,
            "acked_lsn": self.acked_lsn,
            "lag": max(0, last_lsn - self.acked_lsn),
            "fetches": self.fetches,
            "last_seen_seconds": round(
                time.perf_counter() - self.last_seen, 3),
        }


class ReplicationHub:
    """Ships the committed-statement stream of one database to followers.

    ``attach=True`` (a primary) hooks the WAL commit listener and the
    database's DDL listener immediately; ``attach=False`` (a follower's
    passive hub, fed by :meth:`ReplicationLog.relay`) defers that until
    :meth:`attach_listeners` -- i.e. until promotion -- so applied
    entries are never double-recorded.
    """

    def __init__(self, db, max_entries: int = 10_000,
                 sync_replicas: int = 0, sync_timeout: float = 5.0,
                 attach: bool = True) -> None:
        if db.recovery.wal is None:
            raise ReplicationLinkError(
                "replication requires the write-ahead log "
                "(Database(wal=True))")
        self.db = db
        self.log = ReplicationLog(max_entries=max_entries)
        #: acknowledged-write contract: a statement is acked to its client
        #: only after this many followers have applied it (0 = async)
        self.sync_replicas = sync_replicas
        self.sync_timeout = sync_timeout
        self.attached = False
        metrics = db.telemetry.metrics or NULL_METRICS
        self._m_entries = metrics.counter(
            "replication_log_entries_total",
            "statements appended to the replication log, by kind")
        self._m_fetches = metrics.counter(
            "replication_fetches_total", "repl_fetch requests served")
        self._m_shipped = metrics.counter(
            "replication_entries_shipped_total",
            "entries handed to followers over the wire")
        self._m_sync_timeouts = metrics.counter(
            "replication_sync_timeouts_total",
            "writes acked without reaching the sync-replica quorum in time")
        self._g_followers = metrics.gauge(
            "replication_followers", "followers currently subscribed")
        self._followers: dict[int, FollowerState] = {}
        self._next_follower = 1
        self._mutex = threading.Lock()
        self._acked = threading.Condition(self._mutex)
        if attach:
            self.attach_listeners()

    # -- capture (primary side) -------------------------------------------

    def attach_listeners(self) -> None:
        """Start recording this database's commits into the log."""
        if self.attached:
            return
        self.attached = True
        self.db.recovery.wal.commit_listeners.append(self._on_commit)
        self.db.ddl_listeners.append(self._on_ddl)

    def _on_commit(self, lsn: int, note: str, records: tuple) -> None:
        # befores are undo-only (followers redo), and records for files
        # already dropped again describe storage neither side keeps --
        # most importantly every retrieve's transient output file, whose
        # pages would otherwise ship a full result set per query.  A
        # statement whose entire footprint was transient ships nothing.
        disk = self.db.storage.disk
        kept = [
            r for r in records
            if r.type in (WalRecordType.BEGIN, WalRecordType.COMMIT)
            or (r.type in (WalRecordType.ALLOC, WalRecordType.PAGE_AFTER)
                and disk.file_exists(r.file_id))
        ]
        if not any(r.type in (WalRecordType.ALLOC, WalRecordType.PAGE_AFTER)
                   for r in kept):
            return
        frames = b"".join(r.encode() for r in kept)
        self.log.append("dml", note=note, frames=frames)
        self._m_entries.inc(kind="dml")

    def _on_ddl(self, text: str, next_file_id: int) -> None:
        self.log.append("ddl", note=" ".join(text.split()),
                        next_file_id=next_file_id)
        self._m_entries.inc(kind="ddl")

    # -- the replication verbs --------------------------------------------

    def subscribe(self, name: str, after_lsn: int) -> dict:
        """Register a follower resuming after ``after_lsn``.

        Idempotent by design: a re-subscribe after a disconnect simply
        creates a fresh follower id resuming from the follower's applied
        LSN; the stale registration ages out of the status view.
        """
        if after_lsn < 0:
            raise ReplicationLinkError(f"bad subscribe LSN {after_lsn}")
        # fail the subscription now, not on the first fetch, if the log
        # no longer reaches back far enough
        self.log.entries_after(after_lsn, max_entries=1)
        with self._mutex:
            state = FollowerState(self._next_follower, name or "follower",
                                  acked_lsn=after_lsn,
                                  subscribed_at=time.time())
            self._next_follower += 1
            self._followers[state.id] = state
            self._g_followers.inc()
        return {"kind": "repl_subscribed", "follower_id": state.id,
                "last_lsn": self.log.last_lsn,
                "oldest_lsn": self.log.oldest_lsn}

    def fetch(self, follower_id: int, after_lsn: int, applied_lsn: int,
              max_entries: int = 256, wait_s: float = 0.0) -> dict:
        """One long-poll: ack ``applied_lsn``, return entries > ``after_lsn``.

        An empty ``entries`` list after ``wait_s`` is the heartbeat -- the
        follower learns the primary is alive (and its ``last_lsn``), the
        primary refreshes the follower's liveness clock.
        """
        self._m_fetches.inc()
        with self._acked:
            state = self._followers.get(follower_id)
            if state is None:
                raise ReplicationLinkError(
                    f"unknown follower id {follower_id}; resubscribe")
            state.last_seen = time.perf_counter()
            state.fetches += 1
            if applied_lsn > state.acked_lsn:
                state.acked_lsn = applied_lsn
                self._acked.notify_all()
        entries = self.log.entries_after(after_lsn, max_entries)
        if not entries and wait_s > 0.0:
            self.log.wait_beyond(after_lsn, wait_s)
            entries = self.log.entries_after(after_lsn, max_entries)
        if entries:
            self._m_shipped.inc(len(entries))
        return {"kind": "repl_entries",
                "entries": [e.to_wire() for e in entries],
                "last_lsn": self.log.last_lsn}

    def forget(self, follower_id: int) -> None:
        with self._mutex:
            if self._followers.pop(follower_id, None) is not None:
                self._g_followers.inc(-1)

    # -- acknowledged-write contract --------------------------------------

    def wait_for_sync(self, lsn: int, timeout: float | None = None) -> bool:
        """Block until ``sync_replicas`` followers have applied ``lsn``.

        Returns False on timeout (counted loudly in
        ``replication_sync_timeouts_total``); the caller still acks the
        client -- availability over durability once the quorum is gone --
        but the breach is observable.
        """
        if self.sync_replicas <= 0 or lsn <= 0:
            return True
        timeout = self.sync_timeout if timeout is None else timeout
        deadline = time.perf_counter() + timeout
        with self._acked:
            while self._acked_count(lsn) < self.sync_replicas:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    self._m_sync_timeouts.inc()
                    return False
                self._acked.wait(remaining)
            return True

    def _acked_count(self, lsn: int) -> int:
        return sum(1 for s in self._followers.values() if s.acked_lsn >= lsn)

    def drain(self, timeout: float = 10.0,
              liveness_s: float = 5.0) -> tuple[bool, list[dict]]:
        """Wait until every live follower has acked the log tail.

        Part of graceful shutdown: a clean primary exit must not strand
        acknowledged statements on dead air.  Followers that have not
        fetched within ``liveness_s`` are considered gone and are not
        waited for.  Returns ``(flushed, laggards)``.
        """
        deadline = time.perf_counter() + timeout
        target = self.log.last_lsn
        with self._acked:
            while True:
                now = time.perf_counter()
                laggards = [
                    s.info(target) for s in self._followers.values()
                    if s.acked_lsn < target and now - s.last_seen < liveness_s
                ]
                if not laggards:
                    return True, []
                remaining = deadline - now
                if remaining <= 0:
                    return False, laggards
                self._acked.wait(min(remaining, 0.25))

    # -- introspection -----------------------------------------------------

    def status(self) -> dict:
        """Wire-safe topology snapshot for ``repl_status`` / ``\\top``."""
        last = self.log.last_lsn
        with self._mutex:
            followers = [s.info(last) for s in self._followers.values()]
        return {
            "role": "primary" if self.attached else "follower",
            "last_lsn": last,
            "oldest_lsn": self.log.oldest_lsn,
            "retained": len(self.log),
            "dropped": self.log.dropped,
            "sync_replicas": self.sync_replicas,
            "followers": sorted(followers, key=lambda f: f["id"]),
        }
