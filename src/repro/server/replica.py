"""Read replicas: follower engines that apply the primary's WAL stream.

``python -m repro.server.replica --primary host:port`` starts a follower:
a full engine process that subscribes to a primary's
:class:`~repro.server.replog.ReplicationHub`, pulls committed-statement
entries over the FRNET001 replication verbs, applies them in LSN order
while holding its engine exclusively (served reads admit around the
apply loop, never through it), and serves **read-only** statements to
its own clients.  The pieces:

* :class:`_ReplLink` -- one subscribed connection to the primary.  All
  frame reads optionally pass through a
  :class:`~repro.recovery.faults.NetFaultInjector`, so a test can drop,
  delay, duplicate, or truncate exactly the frame it means to;
* :class:`Replica` -- the apply loop.  DML entries replay through the
  same redo primitives crash recovery uses (``ensure_pages`` /
  ``restore_page`` / cache refresh); DDL entries re-execute their
  statement text after adopting the primary's file-id cursor.  The link
  retries with capped exponential backoff plus deterministic jitter and
  re-subscribes idempotently from the last *applied* LSN -- duplicated
  entries are skipped by LSN, a gap forces a reconnect;
* :class:`ReplicaServer` -- a :class:`~repro.server.service.Server` whose
  sessions admit reads (subject to the staleness bound) and refuse writes
  with ``read_only_replica``.  A read finding ``lag > max_lag_statements``
  fails with ``replica_stale``, and ``/health`` answers 503 with status
  ``stale`` so a read-routing load balancer ejects the follower;
* **promotion** -- :meth:`Replica.promote` stops the apply loop, runs
  :meth:`Database.recover` (the same restart path a crashed primary
  takes), attaches the hub's capture listeners, and flips the server
  writable.  Applied entries were relayed into the follower's own
  replication log all along, so the promoted node can immediately serve
  the stream to the surviving followers.

Staleness contract: ``lag = last-known-primary-LSN - applied_lsn``.  A
disconnected follower keeps serving whatever it has (degraded,
read-only-stale) as long as that lag stays within the bound; it never
serves a read it knows to be further behind than the operator allowed.
"""

from __future__ import annotations

import argparse
import json
import random
import signal
import socket
import sys
import threading
import time
import zlib

from repro.errors import (
    ProtocolError,
    ReadOnlyReplicaError,
    RemoteError,
    ReplicaStaleError,
    ReplicationLinkError,
    ReproError,
    WalError,
)
from repro.cache import invalidate_applied_entry
from repro.recovery.wal import WalRecordType
from repro.schema.parser import execute_ddl
from repro.server import protocol
from repro.server.replog import ReplicationEntry, ReplicationHub
from repro.server.service import Server


class _ReplLink:
    """One subscribed connection to the primary.

    Owns the socket, the read timeout (how long a silent primary is
    tolerated -- the long-poll heartbeat must arrive within it), and the
    optional frame-fault injector.  ``request`` tolerates duplicated
    response frames by skipping stale request ids.
    """

    def __init__(self, host: str, port: int, timeout: float = 3.0,
                 faults=None) -> None:
        self.faults = faults
        self._pending: list[dict] = []
        self._next_id = 0
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock.settimeout(timeout)
        protocol.check_handshake(self._read_obj())

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    # -- framing through the fault injector --------------------------------

    def _read_obj(self) -> dict:
        """Read one frame, subjecting it to the injector's verdict."""
        while True:
            if self._pending:
                return self._pending.pop(0)
            head = protocol._recv_exact(self.sock, 8, "frame header")
            length, crc = protocol._HEAD.unpack(head)
            if length > protocol.MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"implausible frame length {length} on replication link")
            payload = protocol._recv_exact(self.sock, length, "frame payload")
            action = (self.faults.plan_frame()
                      if self.faults is not None and self.faults.armed
                      else "ok")
            if action == "drop":
                continue  # the frame vanished; keep waiting (read timeout)
            if action == "delay":
                time.sleep(self.faults.delay_seconds)
            if action == "truncate":
                # the connection died mid-frame: nothing usable arrived
                raise ProtocolError(
                    "injected fault: replication frame truncated mid-flight")
            if zlib.crc32(payload) != crc:
                raise ProtocolError("frame checksum mismatch")
            try:
                obj = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(
                    f"replication frame is not JSON: {exc}") from None
            if not isinstance(obj, dict):
                raise ProtocolError("replication frame is not a JSON object")
            if action == "duplicate":
                self._pending.append(obj)
            return obj

    def request(self, kind: str, **fields) -> dict:
        self._next_id += 1
        protocol.write_frame(self.sock,
                             {"id": self._next_id, "kind": kind, **fields})
        skipped = 0
        while True:
            obj = self._read_obj()
            rid = obj.get("id")
            if rid == self._next_id or rid == 0:
                break
            # a duplicated earlier response; drop it (bounded)
            skipped += 1
            if skipped > 8:
                raise ProtocolError(
                    f"no response matched request {self._next_id} "
                    f"after {skipped} stale frame(s)")
        if not obj.get("ok"):
            error = obj.get("error") or {}
            raise RemoteError(error.get("code", "internal_error"),
                              error.get("message",
                                        "replication request failed"))
        return obj.get("result") or {}


class Replica:
    """The follower: applies the primary's stream, tracks its own lag."""

    def __init__(self, primary: tuple[str, int], db=None,
                 name: str = "replica", max_lag_statements: int = 64,
                 poll_wait: float = 0.5, link_timeout: float | None = None,
                 min_backoff: float = 0.05, max_backoff: float = 2.0,
                 jitter_seed: int = 0, net_faults=None,
                 repl_log_entries: int = 10_000) -> None:
        if db is None:
            from repro.schema.database import Database

            db = Database(wal=True)
        if db.recovery.wal is None:
            raise ReplicationLinkError(
                "a replica requires the write-ahead log (Database(wal=True))")
        self.db = db
        self.primary = primary
        self.name = name
        #: reads are refused (``replica_stale``) past this lag; negative
        #: disables the bound (serve however stale)
        self.max_lag = max_lag_statements
        self.poll_wait = poll_wait
        #: how long a silent link is tolerated; must exceed the long-poll
        #: wait or every empty heartbeat would look like a dead primary
        self.link_timeout = (poll_wait + 2.0 if link_timeout is None
                             else link_timeout)
        self.min_backoff = min_backoff
        self.max_backoff = max_backoff
        self.net_faults = net_faults
        #: the follower's own (passive) hub: applied entries are relayed
        #: into its log so a promoted node can serve the stream onward
        self.hub = ReplicationHub(db, max_entries=repl_log_entries,
                                  attach=False)
        #: replaced by ReplicaServer with the admission gate: applying
        #: an entry then quiesces the served engine (exclusive mode)
        self.latch = threading.RLock()
        self.server: Server | None = None
        self.applied_lsn = 0
        self.primary_lsn = 0
        self.entries_applied = 0
        self.reconnects = 0
        self.connected = False
        self.promoted = False
        self.resync_needed = False
        self.last_contact: float | None = None
        self.promotion_seconds: float | None = None
        self._rng = random.Random(jitter_seed)
        self._follower_id = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        metrics = db.telemetry.metrics
        self._g_applied = metrics.gauge(
            "replica_applied_lsn", "last stream LSN applied locally")
        self._g_lag = metrics.gauge(
            "replica_lag_statements",
            "statements behind the last-known primary LSN")
        self._m_applied = metrics.counter(
            "replica_entries_applied_total", "stream entries applied, by kind")
        self._m_reconnects = metrics.counter(
            "replica_reconnects_total", "replication link reconnect attempts")
        self._m_stale = metrics.counter(
            "replica_stale_reads_rejected_total",
            "reads refused because lag exceeded the staleness bound")
        self._m_promotions = metrics.counter(
            "replica_promotions_total", "follower-to-primary promotions")

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Replica":
        """Start the apply loop (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name=f"repro-replica-{self.name}",
                                        daemon=True)
        self._thread.start()
        return self

    def stop_apply(self, timeout: float = 10.0) -> None:
        """Stop the apply loop and wait for it to exit."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=timeout)

    # -- the apply loop ------------------------------------------------------

    def _run(self) -> None:
        backoff = self.min_backoff
        while not self._stop.is_set():
            link = None
            try:
                link = _ReplLink(self.primary[0], self.primary[1],
                                 timeout=self.link_timeout,
                                 faults=self.net_faults)
                # idempotent re-subscribe: always resume from what this
                # engine has durably applied, never from what was fetched
                sub = link.request("repl_subscribe", follower=self.name,
                                   after_lsn=self.applied_lsn)
                self._follower_id = int(sub.get("follower_id", 0))
                self._observe_primary(sub.get("last_lsn", 0))
                backoff = self.min_backoff
                self._stream(link)
            except RemoteError as exc:
                if exc.code == "replica_resync":
                    # the primary's log no longer reaches back to us;
                    # only a re-seed (fresh replica) can fix that
                    self.resync_needed = True
                    self.connected = False
                    print(f"repro-replica: {exc}; stopping apply loop "
                          f"(re-seed this follower)",
                          file=sys.stderr, flush=True)
                    return
                self._note_disconnect()
            except (OSError, ReproError):
                self._note_disconnect()
            finally:
                if link is not None:
                    link.close()
            if self._stop.is_set():
                return
            # capped exponential backoff with deterministic jitter
            self._stop.wait(backoff * (0.5 + self._rng.random()))
            backoff = min(backoff * 2.0, self.max_backoff)

    def _stream(self, link: _ReplLink) -> None:
        while not self._stop.is_set():
            resp = link.request(
                "repl_fetch", follower_id=self._follower_id,
                after_lsn=self.applied_lsn, applied_lsn=self.applied_lsn,
                max_entries=256, wait_s=self.poll_wait)
            self._observe_primary(resp.get("last_lsn", 0))
            for obj in resp.get("entries") or []:
                if self._stop.is_set():
                    return
                entry = ReplicationEntry.from_wire(obj)
                if entry.lsn <= self.applied_lsn:
                    continue  # duplicated delivery: already applied
                if entry.lsn != self.applied_lsn + 1:
                    raise ReplicationLinkError(
                        f"replication stream gap: expected LSN "
                        f"{self.applied_lsn + 1}, got {entry.lsn}")
                self._apply(entry)

    def _observe_primary(self, last_lsn) -> None:
        self.primary_lsn = max(self.primary_lsn, int(last_lsn or 0))
        self.last_contact = time.perf_counter()
        self.connected = True
        self._g_lag.set(self.lag)

    def _note_disconnect(self) -> None:
        if self.connected:
            self.connected = False
        self.reconnects += 1
        self._m_reconnects.inc()

    # -- applying one entry --------------------------------------------------

    def _apply(self, entry: ReplicationEntry) -> None:
        with self.latch:
            if entry.kind == "ddl":
                # adopt the primary's file-id cursor first so the files
                # this DDL creates get identical ids on both engines
                try:
                    self.db.storage.disk.sync_file_cursor(entry.next_file_id)
                except ValueError as exc:
                    raise ReplicationLinkError(
                        f"entry {entry.lsn}: {exc}") from None
                execute_ddl(self.db, entry.note)
            else:
                self._redo(entry)
            # result-cache coherence before the applied LSN advances: a
            # cached read on this replica is never staler than the
            # replica itself (DDL flushes; DML invalidates by the sets
            # owning the touched files)
            invalidate_applied_entry(self.db, entry)
            self.applied_lsn = entry.lsn
            self.hub.log.relay(entry)
        self.entries_applied += 1
        self._m_applied.inc(kind=entry.kind)
        self._g_applied.set(entry.lsn)
        self._g_lag.set(self.lag)

    def _redo(self, entry: ReplicationEntry) -> None:
        """Replay one DML entry with crash recovery's redo primitives."""
        try:
            records = entry.records()
        except WalError as exc:
            raise ReplicationLinkError(
                f"entry {entry.lsn} is undecodable: {exc}") from None
        if not records or records[-1].type is not WalRecordType.COMMIT:
            raise ReplicationLinkError(
                f"entry {entry.lsn} is not a complete committed statement")
        disk = self.db.storage.disk
        affected: set[tuple[int, int]] = set()
        for record in records:
            # files dropped again on the primary after these records were
            # written describe storage neither engine keeps
            if record.type is WalRecordType.ALLOC:
                if disk.file_exists(record.file_id):
                    disk.ensure_pages(record.file_id, record.page_no + 1)
                    affected.add((record.file_id, record.page_no))
            elif record.type is WalRecordType.PAGE_AFTER:
                if disk.file_exists(record.file_id):
                    disk.restore_page(record.file_id, record.page_no,
                                      record.image)
                    affected.add((record.file_id, record.page_no))
        self.db.storage.pool.discard_pages(affected)
        self.db.recovery.refresh_caches({fid for fid, __ in affected})

    # -- the staleness / read-only contract ----------------------------------

    @property
    def lag(self) -> int:
        return max(0, self.primary_lsn - self.applied_lsn)

    @property
    def stale(self) -> bool:
        return self.max_lag >= 0 and self.lag > self.max_lag

    def guard(self, kind: str) -> None:
        """The session access guard: refuse writes, bound read staleness."""
        if self.promoted:
            return
        if kind == "write":
            raise ReadOnlyReplicaError(
                "read replica: write statements must go to the primary "
                "(or promote this follower)")
        if self.stale:
            self._m_stale.inc()
            raise ReplicaStaleError(
                f"replica is {self.lag} statement(s) behind the primary "
                f"(bound {self.max_lag}); retry on the primary",
                lag=self.lag, bound=self.max_lag)

    # -- promotion -----------------------------------------------------------

    def promote(self) -> dict:
        """Become a primary: stop applying, recover, start capturing.

        :meth:`Database.recover` is the same restart path a crashed
        primary takes -- it rebuilds every derived in-memory structure
        from the disk image and re-verifies replication invariants, so
        the promoted node starts from a proven-consistent state.
        """
        started = time.perf_counter()
        if self.promoted:
            return {"kind": "promoted", "already": True,
                    "applied_lsn": self.applied_lsn}
        self.stop_apply()
        with self.latch:
            report = self.db.recover(verify=True)
            self.hub.attach_listeners()
            self.promoted = True
        self.promotion_seconds = time.perf_counter() - started
        self._m_promotions.inc()
        return {
            "kind": "promoted",
            "applied_lsn": self.applied_lsn,
            "last_known_primary_lsn": self.primary_lsn,
            "seconds": round(self.promotion_seconds, 4),
            "recovery": str(report),
        }

    # -- introspection -------------------------------------------------------

    def status(self) -> dict:
        """Wire-safe follower-side status (``repl_status`` / ``/health``)."""
        status = {
            "role": "primary (promoted)" if self.promoted else "follower",
            "name": self.name,
            "primary": f"{self.primary[0]}:{self.primary[1]}",
            "applied_lsn": self.applied_lsn,
            "last_known_primary_lsn": self.primary_lsn,
            "lag": self.lag,
            "max_lag_statements": self.max_lag,
            "stale": self.stale,
            "connected": self.connected,
            "promoted": self.promoted,
            "resync_needed": self.resync_needed,
            "entries_applied": self.entries_applied,
            "reconnects": self.reconnects,
            "link": {
                "poll_wait_s": self.poll_wait,
                "timeout_s": self.link_timeout,
                "last_contact_seconds": (
                    round(time.perf_counter() - self.last_contact, 3)
                    if self.last_contact is not None else None),
            },
        }
        if self.promoted:
            status["followers"] = self.hub.status()["followers"]
        if self.promotion_seconds is not None:
            status["promotion_seconds"] = round(self.promotion_seconds, 4)
        return status


class ReplicaServer(Server):
    """A TCP server over a follower engine.

    Identical protocol surface to :class:`Server`, but sessions pass
    through the replica's access guard (writes refused, stale reads
    refused) and ``promote`` actually promotes.  After promotion the
    guard stands down and this server is a primary in every respect --
    including serving the replication stream to new followers from the
    relayed log.
    """

    def __init__(self, replica: Replica, **kwargs) -> None:
        super().__init__(replica.db, hub=replica.hub, **kwargs)
        self.replica = replica
        replica.server = self
        replica.latch = self.sessions.latch
        self.sessions.access_guard = replica.guard

    def start(self) -> "ReplicaServer":
        super().start()
        self.replica.start()
        return self

    def shutdown(self) -> None:
        self.replica.stop_apply()
        super().shutdown()

    def die(self) -> None:
        self.replica.stop_apply(timeout=0.0)
        super().die()

    def _handle_promote(self, sock, request_id: int) -> bool:
        try:
            result = self.replica.promote()
        except ReproError as exc:
            protocol.write_frame(
                sock, protocol.error_response(request_id, exc))
        except Exception as exc:  # promotion bug: report, stay a follower
            protocol.write_frame(
                sock, protocol.error_response(request_id, exc))
        else:
            protocol.write_frame(
                sock, protocol.ok_response(request_id, result))
        return True

    def _replication_status(self) -> dict:
        return self.replica.status()

    def health(self) -> dict:
        document = super().health()
        replica = self.replica
        if document["status"] == "ok" and not replica.promoted:
            if replica.stale:
                # a load balancer must stop routing reads here (503)
                document["status"] = "stale"
            elif not replica.connected:
                document["status"] = "degraded"
        return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.replica",
        description="serve a read replica following a primary's WAL stream")
    parser.add_argument("--primary", required=True, metavar="HOST:PORT",
                        help="the primary server's statement address")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7879,
                        help="TCP port for read-only clients (0: ephemeral)")
    parser.add_argument("--name", default=None,
                        help="follower name shown in the primary's topology")
    parser.add_argument("--max-lag-statements", type=int, default=64,
                        metavar="N",
                        help="refuse reads (replica_stale) when more than N "
                             "statements behind; -1 serves however stale")
    parser.add_argument("--poll-wait", type=float, default=0.5,
                        metavar="SECONDS",
                        help="long-poll (heartbeat) interval on the link")
    parser.add_argument("--max-backoff", type=float, default=2.0,
                        metavar="SECONDS",
                        help="reconnect backoff cap")
    parser.add_argument("--max-connections", type=int, default=32)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=32)
    parser.add_argument("--lock-timeout", type=float, default=10.0)
    parser.add_argument("--health-ttl", type=float, default=30.0)
    parser.add_argument("--metrics-port", type=int, default=None, metavar="N",
                        help="HTTP /metrics /health /replication sidecar")
    parser.add_argument("--chaos-seed", type=int, default=None, metavar="N",
                        help="arm the link fault injector with this seed")
    parser.add_argument("--chaos-drop", type=float, default=0.0)
    parser.add_argument("--chaos-delay", type=float, default=0.0)
    parser.add_argument("--chaos-duplicate", type=float, default=0.0)
    parser.add_argument("--chaos-truncate", type=float, default=0.0)
    args = parser.parse_args(argv)

    host, _, port_text = args.primary.rpartition(":")
    try:
        primary = (host or "127.0.0.1", int(port_text))
    except ValueError:
        print(f"error: --primary must be HOST:PORT, not {args.primary!r}",
              file=sys.stderr)
        return 1

    net_faults = None
    if args.chaos_seed is not None:
        from repro.recovery.faults import NetFaultInjector

        net_faults = NetFaultInjector(
            seed=args.chaos_seed, drop=args.chaos_drop,
            delay=args.chaos_delay, duplicate=args.chaos_duplicate,
            truncate=args.chaos_truncate)

    replica = Replica(primary, name=args.name or f"replica-{args.port}",
                      max_lag_statements=args.max_lag_statements,
                      poll_wait=args.poll_wait, max_backoff=args.max_backoff,
                      net_faults=net_faults)
    server = ReplicaServer(replica, host=args.host, port=args.port,
                           max_connections=args.max_connections,
                           workers=args.workers, queue_depth=args.queue_depth,
                           lock_timeout=args.lock_timeout,
                           health_ttl=args.health_ttl)
    server.start()
    print(f"replica {replica.name} listening on {server.host}:{server.port} "
          f"(primary {primary[0]}:{primary[1]})", flush=True)
    sidecar = None
    if args.metrics_port is not None:
        from repro.server.httpexpo import MetricsHTTPServer

        sidecar = MetricsHTTPServer(server, host=args.host,
                                    port=args.metrics_port).start()
        print(f"metrics on {sidecar.host}:{sidecar.port}", flush=True)

    def drain(signum, frame):
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, drain)
    signal.signal(signal.SIGINT, drain)
    server.wait()
    if sidecar is not None:
        sidecar.shutdown()
    print("replica drained", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
