"""The wire protocol: length-prefixed, versioned, CRC'd JSON frames.

The server and client exchange *frames* with the same framing discipline
as the write-ahead log's ``FRWAL001`` records -- a length, a checksum,
then the body -- so a torn or corrupted frame is detected before any of
it is interpreted::

    frame   := length:u32 crc32:u32 payload
    payload := JSON object, utf-8

The first frame on a connection is the server's **handshake** and carries
``{"v": 1, "magic": "FRNET001", "session": <id>}``; a client that sees a
different magic or protocol version disconnects.  After that, the client
sends request objects and the server answers each with exactly one
response object carrying the same ``id``:

request::

    {"id": 7, "kind": "statement", "statement": "retrieve (Emp1.name)"}
    {"id": 7, "kind": "statement", "statement": "...",
        "trace_id": "9f2c4a1b00d14e55"}   # optional: client-minted trace id
    {"id": 8, "kind": "meta", "command": "describe", "args": []}
    {"id": 9, "kind": "stats" | "statements" | "ping" | "shutdown" | "close"}

response::

    {"id": 7, "ok": true,  "result": {"kind": "rows", "columns": [...],
        "rows": [[...]], "plan": "...", "io": {"reads": r, "writes": w,
        "total": t}}}
    {"id": 7, "ok": true,  "result": {"kind": "ok" | "text", ...}}
    {"id": 7, "ok": false, "error": {"code": "lock_timeout",
        "type": "LockTimeoutError", "message": "..."}}

A traced statement (one that carried ``trace_id``, or ran in a session
that toggled ``\\trace on``) additionally gets ``result["trace"]``::

    {"trace_id": "9f2c4a1b00d14e55", "spans": [<span dict>, ...]}

where each span dict is :meth:`repro.telemetry.tracing.Span.to_dict`
(``span_id`` / ``parent_id`` / ``name`` / ``attrs`` / ``start_ts`` /
``duration_ms`` / ``io`` / ``self_io``); root spans have ``parent_id``
null and the client re-parents them under its own ``client_request``
span (id 0) to form the cross-process tree.  The ``stats`` verb returns
``{"kind": "stats", "stats": {...}}`` -- the server-level snapshot that
feeds ``\\top`` (uptime, sessions, throughput, I/O and hit rate, lock
waits and hottest resources, WAL posture, slow-query tail, statement
fingerprints, replication ledger).  The ``statements`` verb returns
``{"kind": "statements", "statements": {"fingerprints": {...},
"ledger": [...]}}`` -- the full per-fingerprint statement statistics and
the replication cost/benefit ledger.

**Replication verbs** carry the WAL-shipping stream between a primary
and its followers (see :mod:`repro.server.replog` /
:mod:`repro.server.replica`)::

    {"id": 1, "kind": "repl_subscribe", "follower": "r1", "after_lsn": 0}
    -> {"kind": "repl_subscribed", "follower_id": 3, "last_lsn": 41,
        "oldest_lsn": 1}
    {"id": 2, "kind": "repl_fetch", "follower_id": 3, "after_lsn": 41,
        "applied_lsn": 41, "max_entries": 256, "wait_s": 0.5}
    -> {"kind": "repl_entries", "entries": [{"lsn": 42, "kind": "dml",
        "note": "...", "frames": "<base64 WAL records>"}], "last_lsn": 42}
    {"id": 3, "kind": "repl_status"}    # topology + per-follower lag
    {"id": 4, "kind": "promote"}        # follower only: become a primary

``repl_fetch`` long-polls up to ``wait_s`` and an empty ``entries``
answer is the heartbeat; the ``applied_lsn`` each fetch carries is the
follower's ack, which the primary's semi-synchronous commit quorum and
shutdown drain wait on.

Structured error codes (``error.code``) are stable strings clients can
dispatch on: ``parse_error``, ``unknown_statement``, ``lock_timeout``,
``deadlock``, ``server_busy``, ``server_shutdown``, ``protocol_error``,
``engine_error``, ``internal_error``, and the replication family:
``replica_stale`` (read rejected: follower lag exceeds the staleness
bound), ``read_only_replica`` (write sent to an un-promoted follower),
``replica_resync`` (follower fell behind the primary's retained log),
``replication_error`` (subscription / stream plumbing failure).
"""

from __future__ import annotations

import json
import socket
import struct
import zlib

from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    ParseError,
    ProtocolError,
    ReadOnlyReplicaError,
    ReplicaResyncError,
    ReplicaStaleError,
    ReplicationLinkError,
    ReproError,
    ServerBusyError,
)

#: Protocol magic + version, negotiated in the server's handshake frame.
MAGIC = "FRNET001"
VERSION = 1

#: Frames beyond this are rejected before allocation -- large result sets
#: are legitimate, a gigabyte frame is a corrupted length field.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEAD = struct.Struct(">II")


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def encode_frame(obj: dict) -> bytes:
    """Serialize one JSON-object frame (length + crc32 + payload)."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return _HEAD.pack(len(payload), zlib.crc32(payload)) + payload


def _recv_exact(sock: socket.socket, n: int, what: str) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if chunks or what == "frame payload":
                raise ProtocolError(
                    f"connection closed mid-frame ({n - remaining} of {n} "
                    f"byte(s) of {what})")
            raise ConnectionResetError("connection closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict:
    """Read one frame; raises ProtocolError on any framing damage and
    ConnectionResetError on a clean close between frames."""
    length, crc = _HEAD.unpack(_recv_exact(sock, _HEAD.size, "frame header"))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"implausible frame length {length} (limit {MAX_FRAME_BYTES})")
    payload = _recv_exact(sock, length, "frame payload")
    if zlib.crc32(payload) != crc:
        raise ProtocolError("frame checksum mismatch")
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("frame payload is not a JSON object")
    return obj


def write_frame(sock: socket.socket, obj: dict) -> None:
    sock.sendall(encode_frame(obj))


# ---------------------------------------------------------------------------
# messages
# ---------------------------------------------------------------------------


def handshake(session_id: int) -> dict:
    return {"v": VERSION, "magic": MAGIC, "session": session_id}


def check_handshake(obj: dict) -> None:
    """Validate the server's handshake (client side)."""
    if obj.get("ok") is False:
        error = obj.get("error") or {}
        from repro.errors import RemoteError

        raise RemoteError(error.get("code", "internal_error"),
                          error.get("message", "connection rejected"))
    if obj.get("magic") != MAGIC or obj.get("v") != VERSION:
        raise ProtocolError(
            f"not a repro server (handshake {obj!r}; expected magic "
            f"{MAGIC!r} v{VERSION})")


def ok_response(request_id: int, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


#: exception type -> stable wire error code.
_ERROR_CODES = (
    (LockTimeoutError, "lock_timeout"),
    (DeadlockError, "deadlock"),
    (ServerBusyError, "server_busy"),
    (ProtocolError, "protocol_error"),
    (ParseError, "parse_error"),
    (ReplicaStaleError, "replica_stale"),
    (ReadOnlyReplicaError, "read_only_replica"),
    (ReplicaResyncError, "replica_resync"),
    (ReplicationLinkError, "replication_error"),
    (ReproError, "engine_error"),
)


def error_code_for(exc: BaseException) -> str:
    for cls, code in _ERROR_CODES:
        if isinstance(exc, cls):
            return code
    return "internal_error"


def error_response(request_id: int, exc: BaseException,
                   code: str | None = None) -> dict:
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "code": code or error_code_for(exc),
            "type": type(exc).__name__,
            "message": str(exc),
        },
    }


def json_safe(value):
    """Coerce a result-row value to something JSON can carry."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)
