"""The threaded TCP server.

One :class:`Server` serves one :class:`~repro.schema.database.Database`.
Each accepted connection gets a session and a reader thread; statements
are executed on the session manager's bounded worker pool, so the
connection thread only parses frames and writes responses.

Admission control is explicit, never unbounded queueing:

* connections beyond ``max_connections`` are answered with a single
  ``server_busy`` error frame and closed;
* requests that find the worker queue full get a ``server_busy`` error
  response immediately (the client decides whether to back off).

Shutdown is graceful on SIGTERM (see ``__main__``) and on a client's
``\\shutdown``: the listener closes, in-flight statements finish, the
worker pool drains, then every connection is closed.

Telemetry: ``server_connections_total``, ``server_active_sessions``,
``server_requests_total{kind=...}``, ``server_rejected_total{reason=...}``.
"""

from __future__ import annotations

import socket
import sys
import threading
import time

from repro.errors import ProtocolError, ReplicationLinkError, ReproError
from repro.server import protocol
from repro.server.session import SessionManager
from repro.telemetry.ash import ActiveSessionHistory
from repro.telemetry.tsstore import AlertEngine, TelemetrySampler, TimeSeriesStore
from repro.telemetry.waitevents import base_event


class Server:
    """A multi-client TCP front end over one database."""

    def __init__(self, db=None, host: str = "127.0.0.1", port: int = 0,
                 max_connections: int = 32, workers: int = 4,
                 queue_depth: int = 32, lock_timeout: float = 10.0,
                 health_ttl: float = 30.0, replication: bool | None = None,
                 sync_replicas: int = 0, sync_timeout: float = 5.0,
                 repl_log_entries: int = 10_000, drain_timeout: float = 10.0,
                 hub=None, sample_interval: float = 1.0,
                 ash_capacity: int = 4096, ts_retention: int = 600) -> None:
        if db is None:
            from repro.schema.database import Database

            db = Database(wal=True)
        self.db = db
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.sessions = SessionManager(db, lock_timeout=lock_timeout,
                                       workers=workers,
                                       queue_depth=queue_depth)
        #: WAL shipping: a WAL-backed database gets a ReplicationHub by
        #: default (``replication=False`` opts out); a wal-less database
        #: cannot ship and silently serves without one.  A follower passes
        #: its own passive ``hub`` in instead.
        self.drain_timeout = drain_timeout
        self.hub = hub
        if self.hub is None:
            enable = (db.recovery.wal is not None
                      if replication is None else replication)
            if enable and db.recovery.wal is not None:
                from repro.server.replog import ReplicationHub

                self.hub = ReplicationHub(db, max_entries=repl_log_entries,
                                          sync_replicas=sync_replicas,
                                          sync_timeout=sync_timeout)
        self.sessions.hub = self.hub
        self.sessions.replication_status = self._replication_status
        metrics = db.telemetry.metrics
        self._m_connections = metrics.counter(
            "server_connections_total", "accepted client connections")
        self._m_requests = metrics.counter(
            "server_requests_total", "requests received, by kind")
        self._m_rejected = metrics.counter(
            "server_rejected_total", "work refused by admission control")
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self.started_at = 0.0
        self._started_mono = 0.0
        #: the doctor verdict is cached and refreshed at most once per
        #: ``health_ttl`` seconds (<= 0: only ever at start).  /health must
        #: not run the doctor per-scrape -- its page reads would pollute
        #: the buffer pool and change later queries' physical I/O -- but a
        #: verdict frozen at start would also never notice a database that
        #: turns unhealthy mid-run, so staleness is bounded instead.
        self.health_ttl = health_ttl
        self._doctor_clean: bool | None = None
        self._doctor_findings = 0
        self._doctor_at = 0.0
        self._doctor_clean_at_start: bool | None = None
        self._doctor_findings_at_start = 0
        #: non-blocking: concurrent scrapes serve the stale verdict while
        #: one refreshes
        self._doctor_refresh = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._mutex = threading.Lock()
        self._inflight = 0
        self._idle = threading.Condition(self._mutex)
        self._stopping = threading.Event()
        self._drained = threading.Event()
        #: the always-on observability layer: one daemon sampler drives
        #: ASH session snapshots, metric time-series points, and alert
        #: evaluation.  ``sample_interval <= 0`` disables the thread; the
        #: stores stay constructed so every surface still answers.
        self.sample_interval = sample_interval
        self.ash = ActiveSessionHistory(capacity=ash_capacity)
        self.tsstore = TimeSeriesStore(retention_points=ts_retention)
        self.alerts = AlertEngine(metrics=metrics)
        self.sampler = TelemetrySampler(interval=sample_interval)
        self.sessions.ash = self.ash
        self.sessions.alerts = self.alerts
        self.sessions.tsstore = self.tsstore
        self._install_probes()
        self._install_alert_rules()
        self.sampler.add(self._sample_tick)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Server":
        self.started_at = time.time()
        self._started_mono = time.perf_counter()
        self._run_doctor()
        self._doctor_clean_at_start = self._doctor_clean
        self._doctor_findings_at_start = self._doctor_findings
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self.host, self.port = listener.getsockname()[:2]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True)
        self._accept_thread.start()
        self.sampler.start()
        return self

    def _run_doctor(self) -> None:
        """Run the doctor against a quiesced engine and cache its verdict.

        ``sessions.latch`` is the admission gate: holding it exclusively
        drains in-flight statements and keeps new ones out, so the doctor
        reads a *consistent* snapshot of pages and session state -- no
        2PL locks are taken, so draining can never deadlock (statements
        acquire all their locks before admission, never inside)."""
        with self.sessions.latch:
            try:
                report = self.db.doctor()
                self._doctor_clean = report.healthy
                self._doctor_findings = len(report.findings)
            except ReproError:
                self._doctor_clean = False
        self._doctor_at = time.perf_counter()

    def _refresh_doctor(self) -> None:
        """Re-run the doctor when the cached verdict outlived the TTL.

        Non-blocking: if another thread is already refreshing, the caller
        serves the stale verdict rather than queueing behind the latch.
        """
        if self.health_ttl <= 0 or not self._started_mono:
            return
        if time.perf_counter() - self._doctor_at < self.health_ttl:
            return
        if not self._doctor_refresh.acquire(blocking=False):
            return
        try:
            if time.perf_counter() - self._doctor_at < self.health_ttl:
                return
            self._run_doctor()
        finally:
            self._doctor_refresh.release()

    # -- the sampling layer (ASH + time series + alerts) -------------------

    def _sample_tick(self) -> None:
        """One sampler pass: ASH snapshot, time-series points, alert
        evaluation.  Reads counters and plain attributes under their own
        mutexes only -- never the engine latch, never pages -- so the
        sampler is observer-neutral by construction."""
        self.ash.sample(self.db.telemetry.waits, self.sessions.sessions())
        self.tsstore.sample_once()
        self.alerts.evaluate()

    def _health_ok(self) -> float:
        """The liveness verdict from *cached* state only (the sampler
        must never trigger a doctor run -- that takes the latch and reads
        pages)."""
        wal = self.db.recovery.wal
        if wal is not None and wal.needs_recovery:
            return 0.0
        if self._doctor_clean is False:
            return 0.0
        if self._stopping.is_set():
            return 0.0
        return 1.0

    def _replica_lag(self) -> tuple[float, float]:
        """``(max lag, stale?)`` from the replication status: a primary
        reports its laggiest follower, a follower its own lag."""
        status = self._replication_status()
        followers = status.get("followers")
        if followers:
            return (float(max(f.get("lag", 0) for f in followers)), 0.0)
        return (float(status.get("lag", 0) or 0),
                1.0 if status.get("stale") else 0.0)

    def _install_probes(self) -> None:
        db = self.db
        metrics = db.telemetry.metrics
        waits = db.telemetry.waits

        def core() -> dict:
            stats = db.stats
            logical = stats.logical_reads
            with self._mutex:
                connections = len(self._conns)
            return {
                "server.connections": float(connections),
                "server.active_sessions": metrics.value(
                    "server_active_sessions"),
                "server.statements_total": metrics.value(
                    "server_requests_total", kind="statement"),
                "io.physical_reads": float(stats.physical_reads),
                "io.physical_writes": float(stats.physical_writes),
                "io.hit_rate": round(
                    stats.buffer_hits / logical, 6) if logical else 0.0,
                "cache.hits_total": metrics.value("result_cache_hits_total"),
                "cache.misses_total": metrics.value(
                    "result_cache_misses_total"),
            }

        def wait_events() -> dict:
            by_class: dict[str, float] = {}
            for row in waits.totals():
                cls = base_event(row["event"])
                by_class[cls] = by_class.get(cls, 0.0) + row["seconds"]
            out = {f"waits.{cls}_seconds": round(seconds, 6)
                   for cls, seconds in by_class.items()}
            out["waits.statement_seconds"] = round(
                waits.statement_seconds, 6)
            hold = metrics.value("admission_hold_seconds_total")
            out["waits.admission_hold_seconds"] = hold
            # legacy series name, kept so old dashboards keep plotting
            out["waits.engine_latch_hold_seconds"] = hold
            return out

        def replication() -> dict:
            lag, stale = self._replica_lag()
            return {"replication.max_lag": lag,
                    "replication.stale": stale,
                    "health.ok": self._health_ok()}

        self.tsstore.register(core)
        self.tsstore.register(wait_events)
        self.tsstore.register(replication)

    def _install_alert_rules(self) -> None:
        store = self.tsstore

        def lock_wait_share() -> tuple[float, bool]:
            dl, _ = store.delta("waits.lock_seconds", 60.0)
            dw, _ = store.delta("waits.statement_seconds", 60.0)
            share = dl / dw if dw > 0.0 else 0.0
            return round(share, 4), dw > 0.05 and share > 0.5

        def replica_staleness() -> tuple[float, bool]:
            stale = store.latest("replication.stale") or 0.0
            return store.latest("replication.max_lag") or 0.0, stale >= 1.0

        def health_flap() -> tuple[float, bool]:
            ok = store.latest("health.ok")
            return (ok if ok is not None else 1.0,
                    ok is not None and ok < 1.0)

        self.alerts.add_rule(
            "lock_wait_share",
            "over half of recent statement time went to lock waits "
            "(60s window)", lock_wait_share, severity="warning",
            threshold=0.5)
        self.alerts.add_rule(
            "replica_staleness",
            "a replica exceeded its staleness bound (or this follower "
            "is stale)", replica_staleness, severity="critical",
            threshold=1.0)
        self.alerts.add_rule(
            "health",
            "the /health verdict left 'ok' (doctor findings, pending "
            "recovery, or draining)", health_flap, severity="critical",
            threshold=1.0)

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the server has fully drained."""
        return self._drained.wait(timeout)

    def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight statements,
        drain the worker pool, close every connection."""
        if self._stopping.is_set():
            self._drained.wait(30.0)
            return
        self._stopping.set()
        self.sampler.stop()
        if self._listener is not None:
            # shutdown() (not just close()) wakes a thread blocked in
            # accept(); otherwise the kernel keeps the port listening
            # until one more connection arrives
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        # let statements that already reached the pool finish
        with self._idle:
            self._idle.wait_for(lambda: self._inflight == 0, timeout=30.0)
        # flush the WAL tail to every live follower before the sockets
        # close: a clean primary exit must not strand acknowledged
        # statements on dead air (a timeout is loud, never silent)
        if self.hub is not None and self.hub.attached:
            flushed, laggards = self.hub.drain(timeout=self.drain_timeout)
            if not flushed:
                names = ", ".join(
                    f"{f['name']}#{f['id']} lag {f['lag']}" for f in laggards)
                print(
                    f"repro-server: shutdown drain timed out after "
                    f"{self.drain_timeout:.1f}s; followers still lagging: "
                    f"{names}", file=sys.stderr, flush=True)
        self.sessions.shutdown()
        with self._mutex:
            conns = list(self._conns)
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._drained.set()

    def die(self) -> None:
        """Abrupt death -- the failover harness's power cut.

        No drain, no WAL-tail flush, no goodbye frames: the listener and
        every connection just vanish mid-stream, exactly like a killed
        process.  Followers must notice via heartbeat timeout."""
        self._stopping.set()
        self.sampler.stop()
        sockets: list[socket.socket] = []
        if self._listener is not None:
            sockets.append(self._listener)
        with self._mutex:
            sockets.extend(self._conns)
            self._conns.clear()
        for sock in sockets:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._drained.set()

    # -- accept loop -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed: drain in progress
            if self._stopping.is_set():
                sock.close()
                return
            with self._mutex:
                full = len(self._conns) >= self.max_connections
                if not full:
                    self._conns.add(sock)
            if full:
                self._m_rejected.inc(reason="connections")
                try:
                    protocol.write_frame(sock, protocol.error_response(
                        0, ReproError(
                            f"connection limit ({self.max_connections}) "
                            f"reached"), code="server_busy"))
                except OSError:
                    pass
                sock.close()
                continue
            self._m_connections.inc()
            threading.Thread(target=self._serve_connection,
                             args=(sock, addr),
                             name=f"repro-conn-{addr[1]}", daemon=True).start()

    # -- per-connection ----------------------------------------------------

    def _serve_connection(self, sock: socket.socket, addr) -> None:
        session = self.sessions.open_session(name=f"{addr[0]}:{addr[1]}")
        try:
            protocol.write_frame(sock, protocol.handshake(session.id))
            while True:
                try:
                    request = protocol.read_frame(sock)
                except ProtocolError as exc:
                    # a damaged frame poisons the stream: report and close
                    try:
                        protocol.write_frame(
                            sock, protocol.error_response(0, exc))
                    except OSError:
                        pass
                    return
                if not self._handle_request(sock, session, request):
                    return
        except (ConnectionResetError, OSError):
            pass  # client went away (or drain closed the socket)
        finally:
            self.sessions.close_session(session)
            with self._mutex:
                self._conns.discard(sock)
            try:
                sock.close()
            except OSError:
                pass

    def _handle_request(self, sock, session, request: dict) -> bool:
        """Dispatch one request; False ends the connection."""
        request_id = request.get("id", 0)
        kind = request.get("kind", "")
        self._m_requests.inc(kind=kind or "unknown")
        if kind == "ping":
            protocol.write_frame(sock, protocol.ok_response(
                request_id, {"kind": "pong"}))
            return True
        if kind == "close":
            protocol.write_frame(sock, protocol.ok_response(
                request_id, {"kind": "ok", "detail": "bye"}))
            return False
        if kind == "stats":
            protocol.write_frame(sock, protocol.ok_response(
                request_id, {"kind": "stats", "stats": self.server_stats()}))
            return True
        if kind == "statements":
            protocol.write_frame(sock, protocol.ok_response(
                request_id, {"kind": "statements",
                             "statements": self.statement_stats()}))
            return True
        if kind == "cache":
            protocol.write_frame(sock, protocol.ok_response(
                request_id,
                {"kind": "cache", "cache": self.db.resultcache.snapshot()}))
            return True
        if kind == "ash":
            # ring reads under the history's own mutex: served on the
            # connection thread, like stats, never queued behind statements
            try:
                window = request.get("window_s")
                doc = self.ash.snapshot(
                    window_s=float(window) if window is not None else None,
                    fingerprint=(str(request["fingerprint"])
                                 if request.get("fingerprint") else None),
                    event=(str(request["event"])
                           if request.get("event") else None),
                    limit=max(0, min(int(request.get("limit", 50)), 1000)))
            except (TypeError, ValueError) as exc:
                protocol.write_frame(sock, protocol.error_response(
                    request_id, ProtocolError(f"bad ash request: {exc}")))
                return True
            protocol.write_frame(sock, protocol.ok_response(
                request_id, {"kind": "ash", "ash": doc}))
            return True
        if kind == "shutdown":
            protocol.write_frame(sock, protocol.ok_response(
                request_id, {"kind": "text", "text": "server draining"}))
            threading.Thread(target=self.shutdown, daemon=True).start()
            return False
        if kind in ("repl_subscribe", "repl_fetch", "repl_status"):
            return self._handle_replication(sock, request_id, kind, request)
        if kind == "promote":
            return self._handle_promote(sock, request_id)
        if kind in ("statement", "meta"):
            self._run_on_pool(sock, session, request_id, kind, request)
            return True
        protocol.write_frame(sock, protocol.error_response(
            request_id, ProtocolError(f"unknown request kind {kind!r}")))
        return True

    def _handle_replication(self, sock, request_id: int, kind: str,
                            request: dict) -> bool:
        """Serve a replication verb on the connection thread itself.

        These never touch engine state (the hub is its own lock domain)
        and ``repl_fetch`` long-polls -- parking it on a bounded worker
        would let a few idle followers starve statement execution."""
        try:
            if self.hub is None:
                raise ReplicationLinkError(
                    "replication is not enabled on this server "
                    "(start it with a WAL-backed database)")
            if kind == "repl_subscribe":
                result = self.hub.subscribe(
                    str(request.get("follower", "") or ""),
                    int(request.get("after_lsn", 0)))
            elif kind == "repl_fetch":
                result = self.hub.fetch(
                    int(request.get("follower_id", 0)),
                    int(request.get("after_lsn", 0)),
                    int(request.get("applied_lsn", 0)),
                    max_entries=max(
                        1, min(int(request.get("max_entries", 256)), 1024)),
                    wait_s=max(0.0, min(
                        float(request.get("wait_s", 0.0) or 0.0), 30.0)))
            else:
                result = {"kind": "repl_status",
                          "replication": self._replication_status()}
        except (TypeError, ValueError) as exc:
            protocol.write_frame(sock, protocol.error_response(
                request_id, ProtocolError(f"bad replication request: {exc}")))
        except ReproError as exc:
            protocol.write_frame(
                sock, protocol.error_response(request_id, exc))
        else:
            protocol.write_frame(
                sock, protocol.ok_response(request_id, result))
        return True

    def _handle_promote(self, sock, request_id: int) -> bool:
        """Base servers are primaries already; ReplicaServer overrides."""
        protocol.write_frame(sock, protocol.error_response(
            request_id, ReplicationLinkError(
                "this server is not a replica; promote targets followers")))
        return True

    def _run_on_pool(self, sock, session, request_id: int, kind: str,
                     request: dict) -> None:
        if self._stopping.is_set():
            protocol.write_frame(sock, protocol.error_response(
                request_id, ReproError("server is draining"),
                code="server_shutdown"))
            return
        if kind == "statement":
            text = request.get("statement", "")
            trace_id = request.get("trace_id")
            if trace_id is not None and not isinstance(trace_id, str):
                trace_id = str(trace_id)
            fn = lambda: session.run_statement(text, trace_id=trace_id)  # noqa: E731
        else:
            command = request.get("command", "")
            args = [str(a) for a in request.get("args") or []]
            fn = lambda: session.run_meta(command, args)  # noqa: E731
        with self._idle:
            self._inflight += 1
        try:
            try:
                result = self.sessions.run(fn)
            except ReproError as exc:
                if protocol.error_code_for(exc) == "server_busy":
                    self._m_rejected.inc(reason="queue")
                protocol.write_frame(
                    sock, protocol.error_response(request_id, exc))
            except Exception as exc:  # engine bug: report, keep serving
                protocol.write_frame(
                    sock, protocol.error_response(request_id, exc))
            else:
                protocol.write_frame(
                    sock, protocol.ok_response(request_id, result))
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    # -- introspection -----------------------------------------------------

    def server_stats(self) -> dict:
        """One wire-safe snapshot for the ``stats`` verb and ``\\top``.

        Reads counters and plain attributes only -- no page I/O, no engine
        latch -- so a 1 Hz dashboard never perturbs query performance.
        """
        db = self.db
        metrics = db.telemetry.metrics
        telemetry = db.telemetry
        stats = db.stats
        with self._mutex:
            connections = len(self._conns)
        sessions = self.sessions.sessions()
        logical = stats.logical_reads
        hit_rate = (stats.buffer_hits / logical) if logical else 0.0
        wal = db.recovery.wal
        return {
            "address": list(self.address),
            "uptime_seconds": round(
                time.perf_counter() - self._started_mono, 3)
                if self._started_mono else 0.0,
            "started_at": round(self.started_at, 3),
            "connections": connections,
            "max_connections": self.max_connections,
            "active_sessions": metrics.value("server_active_sessions"),
            "connections_total": metrics.value("server_connections_total"),
            "requests_total": self._m_requests.total(),
            "statements_total": metrics.value(
                "server_requests_total", kind="statement"),
            "rejected_total": self._m_rejected.total(),
            "lock_waits_total": metrics.value("lock_waits_total"),
            "deadlocks_total": metrics.value("deadlocks_total"),
            "lock_timeouts_total": metrics.value("lock_timeouts_total"),
            "sets": len(db.catalog.sets),
            "io": {
                "physical_reads": stats.physical_reads,
                "physical_writes": stats.physical_writes,
                "logical_reads": logical,
                "buffer_hits": stats.buffer_hits,
                "hit_rate": round(hit_rate, 4),
                "evictions": stats.evictions,
            },
            "locks": {
                "waits_total": metrics.value("lock_waits_total"),
                "wait_seconds_total": round(
                    metrics.histogram("lock_wait_seconds").sum(), 6),
                "deadlocks_total": metrics.value("deadlocks_total"),
                "timeouts_total": metrics.value("lock_timeouts_total"),
                "hottest": self.sessions.locks.contention.top(5),
            },
            "wal": {
                "enabled": wal is not None,
                "needs_recovery": bool(wal is not None
                                       and wal.needs_recovery),
                "records": len(wal.records) if wal is not None else 0,
                "flushes": metrics.value("wal_flushes_total"),
            },
            "slow": {
                "total": metrics.value("slow_queries_total"),
                "threshold_ms": telemetry.slowlog.threshold_ms,
                "tail": telemetry.slowlog.tail(5),
                "grouped": telemetry.slowlog.grouped()[:5],
            },
            "statements": {
                "distinct": len(telemetry.statements),
                "evicted": telemetry.statements.evicted,
                "top": telemetry.statements.top(5, order_by="calls"),
            },
            "cache": db.resultcache.snapshot(),
            "ledger": telemetry.repledger.entries(),
            "replication": self._replication_status(),
            "admission": {
                "concurrent_statements": metrics.value(
                    "concurrent_statements"),
                "concurrent_statements_peak": metrics.value(
                    "concurrent_statements_peak"),
                "queue_depth": metrics.value("admission_queue_depth"),
            },
            "waits": {
                **telemetry.waits.snapshot(),
                # keys keep their legacy latch_* names for old clients
                "latch_wait_seconds": round(metrics.histogram(
                    "admission_wait_seconds").sum(), 6),
                "latch_hold_seconds": round(metrics.value(
                    "admission_hold_seconds_total"), 6),
            },
            "ash": {
                "retained": len(self.ash),
                "sampled_total": self.ash.sampled_total,
                "interval_s": self.sample_interval,
                "profile": self.ash.profile("event")[:8],
            },
            "alerts": {
                "firing": self.alerts.firing(),
                "evaluations": self.alerts.evaluations,
            },
            "sessions_detail": [s.info() for s in sessions],
        }

    def _replication_status(self) -> dict:
        """Topology snapshot for stats / ``\\replication`` / ``/replication``
        (ReplicaServer overrides with follower-side lag and link state)."""
        if self.hub is None:
            return {"role": "none"}
        return self.hub.status()

    def statement_stats(self) -> dict:
        """The ``statements`` verb / HTTP ``/statements`` document.

        Like :meth:`server_stats` this reads in-memory aggregates only --
        no page I/O, no engine latch.
        """
        return {
            "fingerprints": self.db.telemetry.statements.snapshot(),
            "ledger": self.db.telemetry.repledger.entries(),
        }

    def health(self) -> dict:
        """The /health document: liveness plus durability posture.

        The doctor verdict is cached and refreshed at most once per
        ``health_ttl`` seconds (so a database that becomes unhealthy
        mid-run flips to ``needs_recovery`` within one TTL), never
        per-scrape -- a scrape storm must not become a doctor storm.
        """
        self._refresh_doctor()
        wal = self.db.recovery.wal
        needs_recovery = bool(wal is not None and wal.needs_recovery)
        status = "ok"
        if needs_recovery or self._doctor_clean is False:
            status = "needs_recovery"
        elif self._stopping.is_set():
            status = "draining"
        return {
            "status": status,
            "uptime_seconds": round(
                time.perf_counter() - self._started_mono, 3)
                if self._started_mono else 0.0,
            "active_sessions":
                self.db.telemetry.metrics.value("server_active_sessions"),
            "wal": {
                "enabled": wal is not None,
                "needs_recovery": needs_recovery,
            },
            "doctor_clean": self._doctor_clean,
            "doctor_findings": self._doctor_findings,
            "doctor_age_seconds": round(
                time.perf_counter() - self._doctor_at, 3)
                if self._doctor_at else None,
            "health_ttl_seconds": self.health_ttl,
            "doctor_clean_at_start": self._doctor_clean_at_start,
            "doctor_findings_at_start": self._doctor_findings_at_start,
            "replication": self._replication_status(),
        }
