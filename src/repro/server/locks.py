"""Set-granularity reader-writer locks with deadlock detection.

Concurrency control happens at the granularity the paper's replication
machinery actually couples data at: **named sets**.  One client's
``replace`` on a replicated terminal field fans out through inverted
paths into hidden-field writes in the *source* set and row writes in the
*replica* set ``S'`` -- so interleaving it with another client's path
scan could observe half-propagated replicas unless both statements lock
every set the propagation touches.

A statement's **lock footprint** is therefore computed *before* it
executes, from its plan plus the replication catalog:

* a ``retrieve`` share-locks the scanned set, every set its functional
  joins traverse, and the replica set behind each ``ReplicaFetch`` step
  (reads answered from in-place hidden fields need nothing beyond the
  scanned set -- that is the point of replication);
* a ``replace`` on ``S.repfield`` exclusive-locks ``S``, ``S'``, and
  every referencing set on a registered replication path (the sets whose
  hidden fields / link entries / replica rows the propagation rewrites);
* link files, inverted-path structures, and lazy queues are covered by
  their root (source) set's lock -- they are only ever touched while it
  is held;
* DDL exclusive-locks the schema resource every statement share-locks,
  so catalog changes serialize against everything.

Lock requests are **all-or-nothing**: a statement's whole footprint is
granted atomically or the requester waits.  Deadlocks can still arise
between *transactions* (sessions holding locks across statements under
two-phase locking); a wait-for-graph detector finds the cycle and aborts
the youngest waiter with :class:`~repro.errors.DeadlockError`.  Every
wait is bounded by a configurable timeout
(:class:`~repro.errors.LockTimeoutError`).

Telemetry: ``lock_waits_total``, ``lock_wait_seconds``,
``deadlocks_total``, ``lock_timeouts_total``.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.errors import DeadlockError, LockTimeoutError
from repro.objects.types import FieldKind
from repro.query.plan import (
    DeletePlan,
    FunctionalJoin,
    HiddenRefJump,
    ReplicaFetch,
    RetrievePlan,
    UpdatePlan,
)
from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.waitevents import LOCK_PREFIX, NULL_WAITS

#: The catalog-wide resource: DML/queries take it shared, DDL exclusive.
SCHEMA_RESOURCE = "__schema"

SHARED = "S"
EXCLUSIVE = "X"

#: lock-wait histogram bounds (seconds).
_WAIT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)


@dataclass(frozen=True)
class LockFootprint:
    """The set-level resources one statement must hold."""

    shared: frozenset = frozenset()
    exclusive: frozenset = frozenset()

    def __post_init__(self):
        # an exclusive lock subsumes a shared one on the same resource
        object.__setattr__(self, "shared", frozenset(self.shared) - frozenset(self.exclusive))
        object.__setattr__(self, "exclusive", frozenset(self.exclusive))

    def describe(self) -> str:
        parts = []
        if self.shared:
            parts.append("S(" + ", ".join(sorted(self.shared)) + ")")
        if self.exclusive:
            parts.append("X(" + ", ".join(sorted(self.exclusive)) + ")")
        return " ".join(parts) or "(none)"


# ---------------------------------------------------------------------------
# footprint computation
# ---------------------------------------------------------------------------


def _sets_of_type(db, type_name: str) -> set:
    """Names of catalog sets whose member type resolves to ``type_name``."""
    root = db.registry.root_name(type_name)
    return {
        s.name for s in db.catalog.sets.values()
        if db.registry.root_name(s.type_name) == root
    }


def _walk_chain(db, start_type: str, chain, out: set) -> None:
    """Share the sets of every type a ref chain traverses."""
    tdef = db.registry.get(start_type)
    for hop in chain:
        try:
            fdef = tdef.field_def(hop)
        except Exception:
            return  # execution will raise a proper error; no locks needed
        if fdef.kind is not FieldKind.REF:
            return
        out |= _sets_of_type(db, fdef.ref_type)
        tdef = db.registry.get(fdef.ref_type)


def _step_locks(db, set_name: str, step, shared: set, exclusive: set) -> None:
    if isinstance(step, FunctionalJoin):
        _walk_chain(db, db.catalog.get_set(set_name).type_name, step.chain, shared)
    elif isinstance(step, ReplicaFetch):
        path = db.catalog.get_path(step.path_text)
        if path.replica_set:
            shared.add(path.replica_set)
    elif isinstance(step, HiddenRefJump):
        # the replicated value is itself a reference (collapsed path);
        # the remaining functional joins start at its target type
        path = db.catalog.get_path(step.path_text)
        ref_field = path.resolved.replicated_fields[0]
        if ref_field.ref_type:
            shared |= _sets_of_type(db, ref_field.ref_type)
            _walk_chain(db, ref_field.ref_type,
                        step.remaining_chain, shared)
    # LocalField / HiddenField read the scanned set only


def _where_locks(db, set_name: str, where, shared: set, exclusive: set) -> None:
    if where is None:
        return
    for clause in where.clauses:
        chain = clause.ref.chain
        if not chain:
            continue
        path = db.catalog.find_path(set_name, chain, clause.ref.field)
        if path is None:
            _walk_chain(db, db.catalog.get_set(set_name).type_name, chain, shared)
        else:
            _path_read_locks(db, path, shared, exclusive)


def _path_read_locks(db, path, shared: set, exclusive: set) -> None:
    if path.lazy:
        # reading a lazy path drains its queue: hidden-field writes
        exclusive.add(path.source_set)
        if path.replica_set:
            exclusive.add(path.replica_set)
    elif path.replica_set:
        shared.add(path.replica_set)


def _write_propagation_locks(db, set_name: str, fields: set, exclusive: set) -> None:
    """Expand a write on ``set_name``'s ``fields`` with every structure a
    registered replication path forces the statement to rewrite."""
    registry = db.registry
    root = registry.root_name(db.catalog.get_set(set_name).type_name)
    for path in db.catalog.paths.values():
        resolved = path.resolved
        involved = False
        # terminal-value write: propagates into the source set's hidden
        # fields (in-place) or the replica set's rows (separate)
        if (registry.root_name(resolved.terminal_type) == root
                and (fields & set(path.replicated_field_names)
                     or resolved.is_full_object)):
            involved = True
        # reference surgery: rewriting a ref attribute anywhere on the
        # chain restructures link entries in the downstream sets
        for pos, hop in enumerate(resolved.ref_chain):
            if hop not in fields:
                continue
            if pos == 0:
                if path.source_set == set_name:
                    involved = True
            elif registry.root_name(resolved.type_names[pos]) == root:
                involved = True
        if involved:
            exclusive.add(path.source_set)
            for type_name in resolved.type_names[1:]:
                exclusive |= _sets_of_type(db, type_name)
            if path.replica_set:
                exclusive.add(path.replica_set)


def footprint_for_plan(db, plan) -> LockFootprint:
    """Compute the lock footprint of one planned statement."""
    shared: set = {SCHEMA_RESOURCE}
    exclusive: set = set()
    if isinstance(plan, RetrievePlan):
        shared.add(plan.set_name)
        steps = list(plan.steps) + list(plan.group_steps)
        if plan.order_step is not None:
            steps.append(plan.order_step)
        for step in steps:
            _step_locks(db, plan.set_name, step, shared, exclusive)
        _where_locks(db, plan.set_name, plan.where, shared, exclusive)
        for path_text in plan.refresh_paths:
            _path_read_locks(db, db.catalog.get_path(path_text), shared, exclusive)
    elif isinstance(plan, UpdatePlan):
        exclusive.add(plan.set_name)
        _where_locks(db, plan.set_name, plan.where, shared, exclusive)
        fields = {name for name, __ in plan.assignments}
        _write_propagation_locks(db, plan.set_name, fields, exclusive)
    elif isinstance(plan, DeletePlan):
        exclusive.add(plan.set_name)
        _where_locks(db, plan.set_name, plan.where, shared, exclusive)
        for path in db.catalog.paths_on_source(plan.set_name):
            exclusive.add(path.source_set)
            for type_name in path.resolved.type_names[1:]:
                exclusive |= _sets_of_type(db, type_name)
            if path.replica_set:
                exclusive.add(path.replica_set)
    else:
        raise TypeError(f"not a plan: {plan!r}")
    return LockFootprint(frozenset(shared), frozenset(exclusive))


def footprint_for_statement(db, stmt) -> LockFootprint:
    """Plan a parsed statement and compute its footprint.

    ``stmt`` is a parsed :class:`~repro.query.language.Retrieve`,
    ``Replace``, or ``Delete``.  DDL takes :func:`ddl_footprint` instead.
    """
    from repro.query.language import Delete, Replace, Retrieve
    from repro.query.planner import plan_delete, plan_replace, plan_retrieve

    if isinstance(stmt, Retrieve):
        plan = plan_retrieve(db, stmt)
    elif isinstance(stmt, Replace):
        plan = plan_replace(db, stmt)
    elif isinstance(stmt, Delete):
        plan = plan_delete(db, stmt)
    else:
        raise TypeError(f"not a statement: {stmt!r}")
    return footprint_for_plan(db, plan)


def ddl_footprint() -> LockFootprint:
    """DDL serializes against every statement via the schema resource."""
    return LockFootprint(exclusive=frozenset({SCHEMA_RESOURCE}))


def maintenance_footprint() -> LockFootprint:
    """verify / doctor / recover / cold: exclusive run of the engine."""
    return LockFootprint(exclusive=frozenset({SCHEMA_RESOURCE}))


# ---------------------------------------------------------------------------
# the lock manager
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AcquireInfo:
    """What one :meth:`LockManager.acquire` call cost the caller.

    ``waited`` is the wall-clock wait for the whole footprint (zero when
    it was granted immediately); ``contended`` lists the resources that
    had conflicting holders at any point during the wait, with the mode
    this owner was requesting.  The full wait is attributed to every
    contended resource -- footprints are granted all-or-nothing, so the
    wait is not divisible, and charging each blocker the whole delay is
    what makes the hottest resource stand out.
    """

    waited: float = 0.0
    #: ``(resource, mode)`` pairs, sorted by resource name.
    contended: tuple = ()

    def wait_breakdown(self) -> list[dict]:
        """Per-resource shares, shaped for span attrs / slow-log records."""
        return [
            {"resource": resource, "mode": mode,
             "waited_ms": round(self.waited * 1000.0, 3)}
            for resource, mode in self.contended
        ]


class ContentionProfiler:
    """Per-resource lock-wait statistics: histograms and a top-K.

    Fed by the lock manager on every wait that actually blocked; read by
    the ``stats`` protocol verb and the ``\\top`` dashboard.  All numbers
    are cumulative since server start.
    """

    def __init__(self, buckets: tuple = _WAIT_BUCKETS) -> None:
        self.buckets = buckets
        self._mutex = threading.Lock()
        self._by_resource: dict[str, dict] = {}

    def record(self, resource: str, mode: str, waited: float) -> None:
        with self._mutex:
            stats = self._by_resource.get(resource)
            if stats is None:
                stats = {
                    "waits": 0,
                    "total_s": 0.0,
                    "max_s": 0.0,
                    "by_mode": {},
                    "histogram": [0] * (len(self.buckets) + 1),
                }
                self._by_resource[resource] = stats
            stats["waits"] += 1
            stats["total_s"] += waited
            stats["max_s"] = max(stats["max_s"], waited)
            stats["by_mode"][mode] = stats["by_mode"].get(mode, 0) + 1
            for i, bound in enumerate(self.buckets):
                if waited <= bound:
                    stats["histogram"][i] += 1
                    break
            else:
                stats["histogram"][-1] += 1

    def top(self, k: int = 5) -> list[dict]:
        """The ``k`` hottest resources by cumulative wait time."""
        with self._mutex:
            items = [
                {"resource": name, "waits": s["waits"],
                 "total_wait_s": round(s["total_s"], 6),
                 "max_wait_s": round(s["max_s"], 6),
                 "by_mode": dict(s["by_mode"])}
                for name, s in self._by_resource.items()
            ]
        items.sort(key=lambda item: (-item["total_wait_s"], item["resource"]))
        return items[:k]

    def histogram(self, resource: str) -> list[int] | None:
        """Bucket counts for one resource (bounds: ``self.buckets`` + inf)."""
        with self._mutex:
            stats = self._by_resource.get(resource)
            return list(stats["histogram"]) if stats is not None else None

    def snapshot(self) -> dict:
        with self._mutex:
            return {name: {**s, "by_mode": dict(s["by_mode"]),
                           "histogram": list(s["histogram"])}
                    for name, s in self._by_resource.items()}


@dataclass
class LockOwner:
    """One lock-holding agent (a session / transaction)."""

    id: int
    name: str = ""
    #: transaction age for deadlock-victim selection: refreshed whenever
    #: the owner goes from holding nothing to holding something, so the
    #: *youngest transaction* (not the youngest connection) is aborted.
    birth: int = 0
    held: dict = field(default_factory=dict)   # resource -> mode
    needed: dict | None = None                 # resource -> mode while waiting
    victim: bool = False


class LockManager:
    """Reader-writer locks over named resources, one mutex for the lot."""

    def __init__(self, timeout: float = 10.0, metrics=NULL_METRICS,
                 waits=NULL_WAITS) -> None:
        #: default lock-wait bound, seconds; per-call override allowed.
        self.timeout = timeout
        #: wait-event collector: blocked acquires become ``lock:<resource>``
        #: events (the elapsed wait split evenly across contended resources)
        self.waits = waits if waits is not None else NULL_WAITS
        #: per-resource wait histograms + hottest-resources top-K.
        self.contention = ContentionProfiler()
        self._mutex = threading.Lock()
        self._cv = threading.Condition(self._mutex)
        self._holders: dict = {}               # resource -> {owner_id: mode}
        self._owners: dict[int, LockOwner] = {}
        self._ids = itertools.count(1)
        self._births = itertools.count(1)
        self._m_waits = metrics.counter(
            "lock_waits_total", "lock requests that had to wait")
        self._m_wait_seconds = metrics.histogram(
            "lock_wait_seconds", "time spent waiting for locks",
            buckets=_WAIT_BUCKETS)
        self._m_deadlocks = metrics.counter(
            "deadlocks_total", "lock cycles broken by aborting a victim")
        self._m_timeouts = metrics.counter(
            "lock_timeouts_total", "lock waits that exceeded the timeout")

    # -- owners ------------------------------------------------------------

    def owner(self, name: str = "") -> LockOwner:
        with self._mutex:
            owner = LockOwner(next(self._ids), name)
            self._owners[owner.id] = owner
            return owner

    def forget(self, owner: LockOwner) -> None:
        """Drop an owner (session closed); releases anything it holds."""
        self.release_all(owner)
        with self._mutex:
            self._owners.pop(owner.id, None)

    # -- acquire / release -------------------------------------------------

    def acquire(self, owner: LockOwner, footprint: LockFootprint,
                timeout: float | None = None) -> AcquireInfo:
        """Grant the whole footprint atomically, or wait.

        Returns an :class:`AcquireInfo` describing how long the grant
        took and which resources were contended.  Raises
        :class:`DeadlockError` if this owner is chosen as a deadlock
        victim and :class:`LockTimeoutError` when the wait exceeds the
        (per-call or manager-wide) timeout.  On either error the owner
        keeps what it already held -- the caller decides whether to
        release (end the transaction) or retry.
        """
        with self._cv:
            needed: dict = {}
            for resource in footprint.exclusive:
                if owner.held.get(resource) != EXCLUSIVE:
                    needed[resource] = EXCLUSIVE
            for resource in footprint.shared:
                if resource not in owner.held and resource not in needed:
                    needed[resource] = SHARED
            if not needed:
                return AcquireInfo()
            if not owner.held:
                owner.birth = next(self._births)
            deadline = time.monotonic() + (self.timeout if timeout is None
                                           else timeout)
            waited = False
            wait_start = time.monotonic()
            contended: dict[str, str] = {}
            wait_token = None
            try:
                while True:
                    if owner.victim:
                        owner.victim = False
                        raise DeadlockError(
                            f"{owner.name or owner.id}: chosen as deadlock "
                            f"victim (youngest waiter in the cycle)")
                    blockers = self._blockers(owner, needed)
                    if not blockers:
                        for resource, mode in needed.items():
                            self._holders.setdefault(resource, {})[owner.id] = mode
                            owner.held[resource] = mode
                        return AcquireInfo(
                            waited=(time.monotonic() - wait_start)
                            if waited else 0.0,
                            contended=tuple(sorted(contended.items())))
                    for resource, mode in self._contended(owner, needed).items():
                        contended.setdefault(resource, mode)
                    owner.needed = needed
                    if not waited:
                        waited = True
                        self._m_waits.inc()
                        wait_token = self.waits.mark_waiting(
                            "lock", footprint.describe())
                    victim = self._find_deadlock_victim(owner)
                    if victim is not None:
                        self._m_deadlocks.inc()
                        if victim is owner:
                            raise DeadlockError(
                                f"{owner.name or owner.id}: chosen as deadlock "
                                f"victim (youngest waiter in the cycle)")
                        victim.victim = True
                        self._cv.notify_all()
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._m_timeouts.inc()
                        raise LockTimeoutError(
                            f"{owner.name or owner.id}: timed out waiting for "
                            f"{footprint.describe()} (held by "
                            f"{sorted(self._owner_names(blockers))})")
                    # short slices keep the detector live even when no
                    # release wakes us (a cycle formed elsewhere)
                    self._cv.wait(min(remaining, 0.05))
            finally:
                owner.needed = None
                if waited:
                    elapsed = time.monotonic() - wait_start
                    self._m_wait_seconds.observe(elapsed)
                    self.waits.unmark_waiting(wait_token)
                    if contended:
                        # the footprint is granted all-or-nothing, so the
                        # wait is one interval: split it evenly across the
                        # resources that actually blocked
                        share = elapsed / len(contended)
                        for resource, mode in sorted(contended.items()):
                            self.contention.record(resource, mode, elapsed)
                            self.waits.record(LOCK_PREFIX + resource, share)
                    else:
                        self.waits.record(LOCK_PREFIX + "other", elapsed)

    def release_all(self, owner: LockOwner) -> None:
        with self._cv:
            for resource in owner.held:
                holders = self._holders.get(resource)
                if holders is not None:
                    holders.pop(owner.id, None)
                    if not holders:
                        del self._holders[resource]
            owner.held.clear()
            owner.victim = False
            self._cv.notify_all()

    # -- introspection -----------------------------------------------------

    def held_by(self, owner: LockOwner) -> dict:
        with self._mutex:
            return dict(owner.held)

    def _owner_names(self, ids) -> list:
        return [
            (self._owners[i].name or str(i)) if i in self._owners else str(i)
            for i in ids
        ]

    # -- internals (mutex held) -------------------------------------------

    def _blockers(self, owner: LockOwner, needed: dict) -> set:
        blockers = set()
        for resource, mode in needed.items():
            for other_id, other_mode in self._holders.get(resource, {}).items():
                if other_id == owner.id:
                    continue  # upgrading our own shared lock
                if mode == EXCLUSIVE or other_mode == EXCLUSIVE:
                    blockers.add(other_id)
        return blockers

    def _contended(self, owner: LockOwner, needed: dict) -> dict:
        """The subset of ``needed`` that currently has conflicting holders
        (resource -> requested mode)."""
        contended = {}
        for resource, mode in needed.items():
            for other_id, other_mode in self._holders.get(resource, {}).items():
                if other_id == owner.id:
                    continue
                if mode == EXCLUSIVE or other_mode == EXCLUSIVE:
                    contended[resource] = mode
                    break
        return contended

    def _find_deadlock_victim(self, start: LockOwner) -> LockOwner | None:
        """Find a wait-for cycle through ``start``; return the youngest
        waiter on it (the victim), or None."""
        waiting = {o.id: o for o in self._owners.values() if o.needed is not None}
        path: list[LockOwner] = []
        seen: set[int] = set()

        def dfs(node: LockOwner):
            if node.id in seen:
                return None
            seen.add(node.id)
            path.append(node)
            for blocker_id in self._blockers(node, node.needed or {}):
                if blocker_id == start.id:
                    return list(path)
                nxt = waiting.get(blocker_id)
                if nxt is not None:
                    cycle = dfs(nxt)
                    if cycle is not None:
                        return cycle
            path.pop()
            return None

        cycle = dfs(start)
        if not cycle:
            return None
        return max(cycle, key=lambda o: o.birth)
