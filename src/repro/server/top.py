"""A live server dashboard over the ``stats`` protocol verb.

::

    python -m repro.server.top --connect 127.0.0.1:7878
    python -m repro.server.top --connect 127.0.0.1:7878 --interval 2

Polls the server's ``stats`` verb and renders one screenful per tick:
sessions and connection state, statement throughput (computed from the
delta between polls), buffer hit rate, lock waits with the hottest
resources, the wait-event profile (where statement wall-clock went,
with admission wait/hold time and live intra-engine parallelism:
``concurrent_statements`` now and at peak, plus the admission queue
depth), WAL posture, the slow-query tail
grouped by fingerprint, the hottest statement fingerprints, the
replication ledger's measured net benefit per path, the active session
history profile, and any firing alerts.  The connected shell's ``\\top``
meta-command drives the same renderer.

Polling reads counters only -- the stats snapshot does no page I/O and
never blocks statement admission -- so watching a server does not
change what it measures.
"""

from __future__ import annotations

import argparse
import sys
import time


def _rate(current: dict, previous: dict | None, key: str,
          elapsed: float | None) -> float:
    if previous is None or not elapsed or elapsed <= 0:
        return 0.0
    return max(0.0, (current.get(key, 0) - previous.get(key, 0)) / elapsed)


def render_top(stats: dict, prev: dict | None = None,
               elapsed: float | None = None) -> str:
    """Render one dashboard frame from a ``stats`` snapshot.

    ``prev``/``elapsed`` (the previous snapshot and the seconds between
    them) turn monotone totals into rates; the first frame shows 0/s.
    """
    address = stats.get("address") or ["?", 0]
    io = stats.get("io") or {}
    locks = stats.get("locks") or {}
    wal = stats.get("wal") or {}
    slow = stats.get("slow") or {}
    stmt_rate = _rate(stats, prev, "statements_total", elapsed)
    lines = [
        f"repro top -- {address[0]}:{address[1]}   "
        f"up {stats.get('uptime_seconds', 0.0):.1f}s",
        f"sessions {stats.get('active_sessions', 0)}  "
        f"connections {stats.get('connections', 0)}"
        f"/{stats.get('max_connections', 0)}  "
        f"statements {stats.get('statements_total', 0)} "
        f"({stmt_rate:.1f}/s)  "
        f"rejected {stats.get('rejected_total', 0)}",
        f"io  hit rate {io.get('hit_rate', 0.0) * 100:.1f}%  "
        f"reads {io.get('physical_reads', 0)}  "
        f"writes {io.get('physical_writes', 0)}  "
        f"logical {io.get('logical_reads', 0)}  "
        f"evictions {io.get('evictions', 0)}",
        f"locks  waits {locks.get('waits_total', 0)}  "
        f"wait time {locks.get('wait_seconds_total', 0.0):.3f}s  "
        f"deadlocks {locks.get('deadlocks_total', 0)}  "
        f"timeouts {locks.get('timeouts_total', 0)}",
    ]
    hottest = locks.get("hottest") or []
    if hottest:
        parts = []
        for h in hottest:
            by_mode = h.get("by_mode") or {}
            mode = max(by_mode, key=by_mode.get) if by_mode else "?"
            parts.append(f"{h['resource']}[{mode}] "
                         f"{h['total_wait_s']:.3f}s({h['waits']})")
        lines.append("hottest  " + "  ".join(parts))
    waits = stats.get("waits") or {}
    if waits.get("events"):
        parts = [f"{w['event']} {w['share'] * 100:.0f}%"
                 for w in waits["events"][:6]]
        lines.append(
            f"waits  coverage {waits.get('coverage', 0.0) * 100:.1f}% of "
            f"{waits.get('statement_seconds', 0.0):.3f}s  "
            + "  ".join(parts))
        admission = stats.get("admission") or {}
        lines.append(
            f"admission  wait {waits.get('latch_wait_seconds', 0.0):.3f}s  "
            f"hold {waits.get('latch_hold_seconds', 0.0):.3f}s  "
            f"active {admission.get('concurrent_statements', 0.0):.0f} "
            f"(peak {admission.get('concurrent_statements_peak', 0.0):.0f})  "
            f"queued {admission.get('queue_depth', 0.0):.0f}")
    lines.append(
        f"wal  {'on' if wal.get('enabled') else 'off'}  "
        f"records {wal.get('records', 0)}  "
        f"flushes {wal.get('flushes', 0)}"
        + ("  NEEDS RECOVERY" if wal.get("needs_recovery") else ""))
    tail = slow.get("tail") or []
    lines.append(
        f"slow (>= {slow.get('threshold_ms', 0.0):.0f}ms)  "
        f"total {slow.get('total', 0)}")
    for entry in tail:
        lines.append(
            f"  {entry.get('duration_ms', 0.0):8.1f}ms  "
            f"lock {entry.get('lock_wait_ms', 0.0):6.1f}ms  "
            f"[{entry.get('outcome', '?')}]  "
            f"{entry.get('statement', '')[:70]}")
    grouped = slow.get("grouped") or []
    if grouped:
        lines.append("slow offenders (grouped by fingerprint):")
        for g in grouped:
            lines.append(
                f"  x{g.get('count', 0):<4} "
                f"total {g.get('total_ms', 0.0):8.1f}ms  "
                f"max {g.get('max_ms', 0.0):8.1f}ms  "
                f"{g.get('statement', '')[:56]}")
    statements = stats.get("statements") or {}
    top_stmts = statements.get("top") or []
    if top_stmts:
        lines.append(
            f"statements  distinct {statements.get('distinct', 0)}  "
            f"evicted {statements.get('evicted', 0)}")
        for s in top_stmts:
            lines.append(
                f"  {s.get('calls', 0):6d} calls  "
                f"p95 {s.get('p95_ms', 0.0):7.2f}ms  "
                f"io {s.get('io_pages', 0):5d}  "
                f"rows {s.get('rows', 0):6d}  "
                f"{s.get('statement', '')[:48]}")
    cache = stats.get("cache") or {}
    if cache:
        invalidations = cache.get("invalidations") or {}
        lines.append(
            f"cache  {'on' if cache.get('enabled') else 'off'}  "
            f"entries {cache.get('entries', 0)}  "
            f"bytes {cache.get('bytes', 0)}/{cache.get('capacity_bytes', 0)}  "
            f"hit rate {cache.get('hit_rate', 0.0) * 100:.1f}%  "
            f"hits {cache.get('hits', 0)}  misses {cache.get('misses', 0)}  "
            f"evictions {cache.get('evictions', 0)}  "
            f"invalidations {sum(invalidations.values())}")
        for entry in cache.get("hottest") or []:
            lines.append(
                f"  x{entry.get('hits', 0):<5} "
                f"{entry.get('rows', 0):6d} rows  "
                f"{entry.get('bytes', 0):8d}B  "
                f"{entry.get('statement', '')[:56]}")
    repl = stats.get("replication") or {}
    role = repl.get("role", "none")
    if role != "none":
        if "applied_lsn" in repl:  # a follower (or promoted follower)
            link = repl.get("link") or {}
            lines.append(
                f"replication  role {role}  "
                f"applied {repl.get('applied_lsn', 0)}"
                f"/{repl.get('last_known_primary_lsn', 0)}  "
                f"lag {repl.get('lag', 0)}"
                f"/{repl.get('max_lag_statements', 0)}"
                f"{'  STALE' if repl.get('stale') else ''}  "
                f"{'connected' if repl.get('connected') else 'DISCONNECTED'}  "
                f"reconnects {repl.get('reconnects', 0)}  "
                f"last contact "
                f"{link.get('last_contact_seconds', '?')}s")
        else:
            lines.append(
                f"replication  role {role}  lsn {repl.get('last_lsn', 0)}  "
                f"retained {repl.get('retained', 0)}  "
                f"dropped {repl.get('dropped', 0)}  "
                f"sync quorum {repl.get('sync_replicas', 0)}")
        for f in repl.get("followers") or []:
            lines.append(
                f"  follower #{f.get('id')} {f.get('name', ''):<16} "
                f"acked {f.get('acked_lsn', 0):<8} lag {f.get('lag', 0):<6} "
                f"fetches {f.get('fetches', 0):<8} "
                f"seen {f.get('last_seen_seconds', 0.0)}s ago")
    ledger = stats.get("ledger") or []
    if ledger:
        lines.append("replication ledger (net pages; + pays for itself):")
        for entry in ledger:
            net = entry.get("net_pages", 0.0)
            lines.append(
                f"  {net:+10.1f}  "
                f"credit {entry.get('credited_pages', 0.0):8.1f} "
                f"({entry.get('reads_served', 0)} reads)  "
                f"charge {entry.get('charged_pages', 0.0):8.1f} "
                f"({entry.get('propagations', 0)} props)  "
                f"{entry.get('path', '')}")
    ash = stats.get("ash") or {}
    if ash.get("profile"):
        parts = [f"{row['event']} {row['share'] * 100:.0f}%"
                 for row in ash["profile"][:6]]
        lines.append(
            f"ash  {ash.get('retained', 0)} retained "
            f"({ash.get('sampled_total', 0)} sampled, "
            f"{ash.get('interval_s', 0.0):.1f}s interval)  "
            + "  ".join(parts))
    alerts = stats.get("alerts") or {}
    firing = alerts.get("firing") or []
    if firing:
        lines.append("alerts FIRING:")
        for a in firing:
            lines.append(
                f"  [{a.get('severity', '?')}] {a.get('alert', '?')}  "
                f"value {a.get('value')}  -- {a.get('description', '')}")
    detail = stats.get("sessions_detail") or []
    if detail:
        lines.append("sessions:")
        for row in detail:
            lines.append(
                f"  #{row.get('id', '?'):<3} {row.get('name', ''):<22} "
                f"{'txn ' if row.get('in_txn') else '    '}"
                f"stmts {row.get('statements', 0):<6} "
                f"errs {row.get('errors', 0):<4} "
                f"{row.get('last_duration_ms', 0.0):8.1f}ms  "
                f"{row.get('last_statement', '')[:48]}")
    return "\n".join(lines)


def run_top(client, iterations: int | None = None, interval: float = 1.0,
            out=None, clear: bool = False) -> int:
    """Poll ``client.stats()`` and print frames; returns frames printed."""
    out = out if out is not None else sys.stdout
    prev = None
    prev_at = None
    frames = 0
    try:
        while iterations is None or frames < iterations:
            stats = client.stats()
            now = time.perf_counter()
            elapsed = (now - prev_at) if prev_at is not None else None
            if clear:
                out.write("\x1b[2J\x1b[H")
            out.write(render_top(stats, prev, elapsed) + "\n")
            out.flush()
            prev, prev_at = stats, now
            frames += 1
            if iterations is None or frames < iterations:
                time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return frames


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.top",
        description="live dashboard over a repro server's stats verb")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between polls")
    parser.add_argument("--iterations", type=int, default=None,
                        help="frames to render (default: until Ctrl-C)")
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"error: --connect wants HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    from repro.server.client import connect

    with connect(host, int(port)) as client:
        run_top(client, iterations=args.iterations, interval=args.interval,
                clear=args.iterations is None)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
