"""Per-connection sessions and the worker pool they execute on.

A :class:`Session` is one client's state: its lock owner, its pending
transaction, its per-session trace log and statement statistics.
Statements execute on the :class:`SessionManager`'s bounded
:class:`WorkerPool` so connection threads never run engine code; a full
queue surfaces as :class:`~repro.errors.ServerBusyError` (explicit
backpressure, never unbounded queueing).

Tracing is **per statement, per session**: a traced statement gets its
own fresh :class:`~repro.telemetry.tracing.Tracer` (seeded with the
client-minted ``trace_id`` when one came over the wire), installed as a
*thread-local* engine tracer for the duration of the statement.
Concurrent sessions therefore never share tracer state -- the old
shared enable/disable toggle could interleave two sessions' spans or
silently untrace one when the other's ``finally: disable()`` fired
mid-flight.  The span tree travels back to the client in the result
object, so a trace crosses the process boundary intact.

Isolation is layered the way a real DBMS layers it:

* **locks** (long-term, logical): the whole footprint of a statement is
  acquired before it runs -- shared schema lock first, so the catalog is
  stable while the plan-derived footprint is computed, then the data-set
  locks.  Autocommit statements release at statement end; between
  ``begin`` and ``commit`` the session holds everything it touched
  (strict two-phase locking), which is what makes deadlock possible and
  the detector necessary;
* **admission** (short-term, physical): a statement whose footprint has
  been fully granted enters the :class:`~repro.server.admission.EngineGate`
  in shared mode and executes *concurrently* with every other granted
  statement -- the engine internals (buffer pool, WAL, metrics) are
  thread-safe at their natural grain, and the lock manager already
  guarantees granted footprints don't conflict.  The gate's exclusive
  mode quiesces the engine for maintenance (doctor refresh, failover,
  test harnesses).  The WAL's per-thread statement scopes keep each
  statement atomic even while their log appends interleave.

Transactions group *isolation*, not durability: each statement commits
its own WAL scope, so ``commit`` releases locks while ``abort`` releases
them without undoing already-applied statements (documented limitation).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from contextlib import contextmanager

from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    ParseError,
    ReproError,
    ServerBusyError,
)
from repro.query.runner import execute_statement
from repro.schema.parser import _DDL_STARTERS, execute_ddl
from repro.server.locks import (
    SCHEMA_RESOURCE,
    AcquireInfo,
    LockFootprint,
    LockManager,
    ddl_footprint,
    footprint_for_statement,
    maintenance_footprint,
)
from repro.server.admission import AdmissionController, EngineGate
from repro.server.protocol import json_safe
from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.tracing import Tracer
from repro.telemetry.waitevents import (
    NULL_WAITS,
    QUEUE_WAIT,
    REPL_ACK,
)

_QUERY_STARTERS = ("retrieve", "replace", "delete")
_SCHEMA_SHARED = LockFootprint(shared=frozenset({SCHEMA_RESOURCE}))

#: spans kept per session for ``\trace dump`` (oldest dropped first).
_TRACE_LOG_SPANS = 2000


# ---------------------------------------------------------------------------
# the worker pool
# ---------------------------------------------------------------------------

#: worker-thread state: the queue wait of the job currently running, so
#: session code deep in the call stack can attribute it to a span.
_worker_state = threading.local()


def current_queue_wait() -> float:
    """Seconds the currently running pool job spent queued (0 outside)."""
    return getattr(_worker_state, "queue_wait", 0.0)


class _Job:
    """A submitted unit of work; ``wait()`` re-raises its exception."""

    __slots__ = ("fn", "_done", "result", "error", "submitted", "queue_wait")

    def __init__(self, fn):
        self.fn = fn
        self._done = threading.Event()
        self.result = None
        self.error = None
        self.submitted = time.perf_counter()
        self.queue_wait = 0.0

    def run(self) -> None:
        self.queue_wait = time.perf_counter() - self.submitted
        _worker_state.queue_wait = self.queue_wait
        try:
            self.result = self.fn()
        except BaseException as exc:  # delivered to the waiter
            self.error = exc
        finally:
            _worker_state.queue_wait = 0.0
            self._done.set()

    def wait(self, timeout: float | None = None):
        if not self._done.wait(timeout):
            raise TimeoutError("job did not complete in time")
        if self.error is not None:
            raise self.error
        return self.result


_STOP = object()

#: queue-wait histogram bounds (seconds).
_QUEUE_WAIT_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class WorkerPool:
    """Fixed worker threads over a bounded queue (admission control)."""

    def __init__(self, workers: int = 4, queue_depth: int = 32,
                 name: str = "repro-worker", metrics=NULL_METRICS) -> None:
        self.workers = workers
        self._m_queue_wait = metrics.histogram(
            "queue_wait_seconds", "time requests spent in the worker queue",
            buckets=_QUEUE_WAIT_BUCKETS)
        self._q: queue.Queue = queue.Queue(maxsize=max(1, queue_depth))
        self._threads = [
            threading.Thread(target=self._run, name=f"{name}-{i}", daemon=True)
            for i in range(max(1, workers))
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, fn) -> _Job:
        job = _Job(fn)
        try:
            self._q.put_nowait(job)
        except queue.Full:
            raise ServerBusyError(
                "request queue full; retry later (server_busy)") from None
        return job

    def _run(self) -> None:
        while True:
            job = self._q.get()
            if job is _STOP:
                return
            job.run()
            self._m_queue_wait.observe(job.queue_wait)

    def shutdown(self) -> None:
        """Drain: queued jobs finish, then the workers exit."""
        for __ in self._threads:
            self._q.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=30.0)


# ---------------------------------------------------------------------------
# sessions
# ---------------------------------------------------------------------------


def serialize_result(result) -> dict:
    """A QueryResult as a wire-safe ``rows`` result object."""
    doc = {
        "kind": "rows",
        "columns": list(result.columns),
        "rows": [[json_safe(v) for v in row] for row in result.rows],
        "plan": result.plan,
        "io": {
            "reads": result.io.physical_reads,
            "writes": result.io.physical_writes,
            "total": result.io.total_io,
        },
    }
    if result.cache is not None:
        doc["cache"] = result.cache
    return doc


class Session:
    """One client's server-side state."""

    def __init__(self, session_id: int, manager: "SessionManager",
                 name: str = "") -> None:
        self.id = session_id
        self.name = name or f"session-{session_id}"
        self.manager = manager
        self.db = manager.db
        self.owner = manager.locks.owner(self.name)
        #: trace every statement even without a client-minted trace_id
        self.trace = False
        #: per-session functional-join strategy override ("naive" |
        #: "batched"); None means the served database's default applies
        self.join_mode: str | None = None
        #: per-session result-cache override; None means the served
        #: database's default applies (``\set cache on|off|default``)
        self.cache: bool | None = None
        self.in_txn = False
        #: read-your-writes guard: True once this open transaction has
        #: written (replace/delete/DDL) -- cached results predate those
        #: writes, so the cache neither serves nor fills until commit
        self._txn_wrote = False
        self.closed = False
        #: cumulative statement count / errors / last statement (for `stats`)
        self.statements = 0
        self.errors = 0
        self.last_statement = ""
        self.last_duration_ms = 0.0
        #: span dicts from this session's traced statements (``\trace dump``)
        self._trace_log: list[dict] = []
        #: the active statement's tracer (None when untraced); statement-
        #: scoped, so concurrent sessions never share tracer state
        self._stmt_tracer: Tracer | None = None
        self._stmt_lock_waits: list[dict] = []
        #: WAL bytes the active statement appended, read from the WAL's
        #: per-thread statement scope so concurrent statements can't
        #: misattribute each other's appends
        self._stmt_wal_bytes = 0
        #: the active statement's wait ledger (None when the collector
        #: is disabled or no statement is in flight)
        self._stmt_waits = None
        #: cumulative per-event wait seconds across this session's life
        self.wait_totals: dict[str, float] = {}
        #: cumulative admission wait / execution occupancy seconds
        #: (for ``\top``; the wire keys keep their legacy latch_* names)
        self.latch_wait_s = 0.0
        self.latch_hold_s = 0.0
        #: serializes this session's own statements (a pipelining client
        #: must not run two statements under one lock owner at once)
        self._mutex = threading.Lock()

    # -- statement dispatch ------------------------------------------------

    def run_statement(self, text: str, trace_id: str | None = None) -> dict:
        """Execute one statement; returns a wire result object.

        ``trace_id`` is the client-minted trace id from the request frame:
        when present (or when this session toggled ``\\trace on``) the
        statement runs under a fresh per-statement :class:`Tracer` and the
        result carries the span tree under ``result["trace"]``.

        Raises ReproError subclasses; the service maps them to structured
        error frames.  Deadlock / lock-timeout errors abort the pending
        transaction (locks released) before propagating.
        """
        with self._mutex:
            body = text.strip().rstrip(";").strip()
            if not body:
                raise ParseError("empty statement")
            tracer = None
            if trace_id is not None or self.trace:
                tracer = Tracer(stats=self.db.stats, enabled=True,
                                trace_id=trace_id, session_id=self.id)
            self._stmt_tracer = tracer
            self._stmt_lock_waits = []
            self._stmt_wal_bytes = 0
            waits = self.db.telemetry.waits
            self._stmt_waits = waits.begin_statement(
                self.id, self.name, " ".join(body.split()))
            queued = current_queue_wait()
            if queued > 0.0:
                waits.record(QUEUE_WAIT, queued)
            started = time.perf_counter()
            outcome = "ok"
            result = None
            try:
                if tracer is None:
                    result = self._dispatch(body)
                    return result
                with tracer.span("statement",
                                 statement=" ".join(body.split())) as root:
                    queued = current_queue_wait()
                    if queued > 0.0:
                        tracer.record("queue_wait",
                                      {"note": "bounded worker queue"},
                                      duration_ms=queued * 1000.0)
                    result = self._dispatch(body)
                    root.set("kind", result.get("kind", ""))
                result = dict(result)
                result["trace"] = {"trace_id": root.trace_id,
                                   "spans": [s.to_dict() for s in tracer.spans]}
                return result
            except (DeadlockError, LockTimeoutError) as exc:
                # the victim must let go or the cycle never breaks
                outcome = type(exc).__name__
                self._end_txn()
                raise
            except ReproError as exc:
                outcome = type(exc).__name__
                raise
            finally:
                duration_ms = (time.perf_counter() - started) * 1000.0
                self._finish_statement(body, duration_ms, outcome, tracer,
                                       result)

    def _dispatch(self, body: str) -> dict:
        first = body.split(None, 1)[0].lower()
        guard = self.manager.access_guard
        if guard is not None:
            # a read replica admits reads (subject to its staleness bound)
            # and refuses writes with a stable error code the client can
            # route on; transaction control is isolation-only, so it passes
            if first in ("replace", "delete") or first in _DDL_STARTERS:
                guard("write")
            elif first in ("retrieve", "explain"):
                guard("read")
        if first == "begin":
            return self._begin()
        if first == "commit":
            return self._commit()
        if first in ("abort", "rollback"):
            return self._abort()
        if first == "explain":
            return self._explain(body)
        if first in _QUERY_STARTERS:
            return self._query(body)
        if first in _DDL_STARTERS:
            return self._ddl(body)
        raise ParseError(f"unrecognised statement: {body!r}")

    def _finish_statement(self, body: str, duration_ms: float, outcome: str,
                          tracer: Tracer | None, result) -> None:
        """Statement epilogue: per-session stats, trace log, slow log."""
        self.statements += 1
        if outcome != "ok":
            self.errors += 1
        self.last_statement = body
        self.last_duration_ms = duration_ms
        if tracer is not None:
            self._stmt_tracer = None
            self._trace_log.extend(s.to_dict() for s in tracer.spans)
            del self._trace_log[:-_TRACE_LOG_SPANS]
        waits = self.db.telemetry.waits
        breakdown = waits.finish_statement(self._stmt_waits,
                                           duration_ms / 1000.0)
        self._stmt_waits = None
        for event, seconds in breakdown.items():
            self.wait_totals[event] = (self.wait_totals.get(event, 0.0)
                                       + seconds)
        lock_wait_ms = sum(w["waited_ms"] for w in self._stmt_lock_waits)
        plan, io, rows, cache = "", {}, None, ""
        if isinstance(result, dict) and result.get("kind") == "rows":
            plan = result.get("plan", "")
            io = dict(result.get("io") or {})
            rows = len(result.get("rows") or ())
            cache = result.get("cache") or ""
        fp = self.db.telemetry.statements.observe(
            " ".join(body.split()), duration_ms, io=io, rows=rows,
            lock_wait_ms=lock_wait_ms, wal_bytes=self._stmt_wal_bytes,
            outcome=outcome, waits=breakdown)
        slowlog = self.db.telemetry.slowlog
        if duration_ms >= slowlog.threshold_ms:
            slowlog.observe(
                statement=" ".join(body.split()), duration_ms=duration_ms,
                plan=plan, io=io, lock_wait_ms=lock_wait_ms,
                lock_waits=list(self._stmt_lock_waits), session=self.name,
                outcome=outcome, rows=rows, fingerprint=fp or "",
                cache=cache, waits=breakdown)
        self._stmt_lock_waits = []

    # -- lock acquisition (traced) ----------------------------------------

    def _acquire(self, footprint: LockFootprint) -> AcquireInfo:
        """Acquire a footprint, recording a ``lock_acquire`` span (when
        tracing) and the per-resource wait shares for the slow log."""
        tracer = self._stmt_tracer
        if tracer is None:
            info = self.manager.locks.acquire(self.owner, footprint)
        else:
            with tracer.span("lock_acquire",
                             resources=footprint.describe()) as span:
                info = self.manager.locks.acquire(self.owner, footprint)
                span.set("waited_ms", round(info.waited * 1000.0, 3))
                if info.contended:
                    span.set("contended", info.wait_breakdown())
        if info.waited:
            self._stmt_lock_waits.extend(info.wait_breakdown())
        return info

    # -- statement admission (wait-accounted) ------------------------------

    @contextmanager
    def _admitted(self):
        """Execute under statement admission.

        The footprint is already granted, so admission is normally
        instant; it blocks only while the engine is quiesced (doctor
        refresh, failover, an exclusive harness).  The wait feeds the
        ``admission_wait`` event and this session's ``latch_wait_s``;
        occupancy feeds ``latch_hold_s`` and the global counter.  The
        ``statement_admitted`` / ``statement_finishing`` fault-injector
        probes bracket execution so tests can inject deterministic
        barriers and prove real statement overlap.
        """
        faults = self.db.faults
        with self.manager.admission.admitted() as grant:
            self.latch_wait_s += grant.waited
            held_from = time.perf_counter()
            faults.probe("statement_admitted")
            try:
                yield
            finally:
                faults.probe("statement_finishing")
                self.latch_hold_s += time.perf_counter() - held_from

    # -- transaction control ----------------------------------------------

    def _begin(self) -> dict:
        if self.in_txn:
            raise ReproError("already in a transaction")
        self.in_txn = True
        self._txn_wrote = False
        return {"kind": "ok", "detail": "begin"}

    def _commit(self) -> dict:
        if not self.in_txn:
            raise ReproError("no transaction in progress")
        self._end_txn()
        return {"kind": "ok", "detail": "commit"}

    def _abort(self) -> dict:
        if not self.in_txn:
            raise ReproError("no transaction in progress")
        self._end_txn()
        return {"kind": "ok", "detail": "abort (locks released; statements "
                                        "already applied remain durable)"}

    def _end_txn(self) -> None:
        self.in_txn = False
        self._txn_wrote = False
        self.manager.locks.release_all(self.owner)

    def _release_if_autocommit(self) -> None:
        if not self.in_txn:
            self.manager.locks.release_all(self.owner)

    # -- statements --------------------------------------------------------

    def _cache_enabled(self) -> bool:
        """The effective cache switch: session override, else db default."""
        if self.cache is not None:
            return self.cache
        return self.db.resultcache.enabled

    def _serve_cached(self, entry, analyze: bool):
        """Serve one probed cache entry under full isolation, or None.

        The entry's stored footprint is reacquired in shared mode (the
        same resources planning would lock -- DDL invalidates via the
        schema resource every footprint carries, so a live entry's
        footprint is current), then the entry is revalidated after the
        lock grant: a writer that invalidated it between the lock-free
        probe and our grant flipped ``alive`` while holding its X-locks,
        so the post-lock check closes that race.  Returns None when the
        entry died -- the caller falls through to normal execution,
        keeping the shared locks it just acquired.
        """
        self._acquire(_SCHEMA_SHARED)
        try:
            self._acquire(LockFootprint(shared=entry.footprint))
            with self._admitted():
                if self.db.resultcache.hit(entry) is None:
                    return None
                from repro.query.runner import serve_cached

                result = self._traced(
                    lambda: serve_cached(entry, analyze=analyze))
        except (DeadlockError, LockTimeoutError):
            raise
        except ReproError:
            self._release_if_autocommit()
            raise
        self._release_if_autocommit()
        return self._render_rows(result, analyze)

    def _render_rows(self, result, analyze: bool) -> dict:
        if analyze:
            from repro.query.analyze import render_analyze

            text = (render_analyze(result)
                    + f"\n({len(result.rows)} row(s))   plan: {result.plan}")
            if result.cache:
                text += f"   cache: {result.cache}"
            return {"kind": "text", "text": text}
        return serialize_result(result)

    def _query(self, body: str, analyze: bool = False):
        from repro.query.language import (
            Delete,
            Replace,
            Retrieve,
            parse_statement,
        )

        cache = self.db.resultcache
        collapsed = " ".join(body.split())
        is_retrieve = collapsed.split(None, 1)[:1] == ["retrieve"]
        cache_on = is_retrieve and self._cache_enabled()
        # read-your-writes: inside an explicit transaction that has
        # written, every cached result predates this session's own writes
        txn_dirty = self.in_txn and self._txn_wrote
        if cache_on and txn_dirty:
            cache.bypass("txn_write")
        elif cache_on:
            entry = cache.get(collapsed)
            if entry is not None:
                served = self._serve_cached(entry, analyze)
                if served is not None:
                    return served
        stmt = parse_statement(body)
        # schema lock first: the catalog is stable while the footprint is
        # computed from the plan, and stays stable through execution
        self._acquire(_SCHEMA_SHARED)
        stmt_lsn = 0
        try:
            footprint = footprint_for_statement(self.db, stmt)
            self._acquire(footprint)
            # a retrieve with a purely shared footprint cannot touch the
            # WAL (a lazy refresh would have an exclusive footprint), so
            # it skips the WAL statement scope entirely
            read_only = isinstance(stmt, Retrieve) and not footprint.exclusive
            with self._admitted():
                try:
                    result = self._traced(
                        lambda: execute_statement(self.db, stmt,
                                                  analyze=analyze,
                                                  read_only=read_only))
                finally:
                    # per-thread WAL scope accounting: exact even while
                    # other statements append to the log concurrently
                    self._stmt_wal_bytes = (
                        0 if read_only
                        else self.db.recovery.last_statement_wal_bytes())
                if isinstance(stmt, Retrieve) and cache_on and not txn_dirty:
                    # fill while still holding the shared footprint locks:
                    # no writer can race the stored rows
                    if footprint.exclusive:
                        cache.bypass("lazy_refresh")
                        result.cache = "bypass"
                    else:
                        cache.miss(collapsed)
                        cache.fill(collapsed, result.columns, result.rows,
                                   result.plan, footprint.shared)
                        result.cache = "miss"
                elif isinstance(stmt, Retrieve) and cache_on:
                    result.cache = "bypass"
                if not read_only and self.db.recovery.last_statement_lsn() > 0:
                    # this statement committed WAL work: ack only once
                    # the replication log has reached at least its head
                    stmt_lsn = self._hub_lsn()
            if isinstance(stmt, (Replace, Delete)) and self.in_txn:
                self._txn_wrote = True
        except (DeadlockError, LockTimeoutError):
            raise
        except ReproError:
            self._release_if_autocommit()
            raise
        self._release_if_autocommit()
        self._await_quorum(stmt_lsn)
        return self._render_rows(result, analyze)

    def _ddl(self, body: str) -> dict:
        self._acquire(ddl_footprint())
        stmt_lsn = 0
        try:
            # the exclusive schema lock quiesces every other statement,
            # so the global before/after deltas below are exact
            with self._admitted():
                lsn_before = self._hub_lsn()
                wal_before = self.db.telemetry.metrics.value("wal_bytes_total")
                try:
                    self._traced(lambda: execute_ddl(self.db, body))
                finally:
                    self._stmt_wal_bytes = (
                        self.db.telemetry.metrics.value("wal_bytes_total")
                        - wal_before)
                lsn_after = self._hub_lsn()
                stmt_lsn = lsn_after if lsn_after > lsn_before else 0
            if self.in_txn:
                self._txn_wrote = True
        finally:
            self._release_if_autocommit()
        self._await_quorum(stmt_lsn)
        return {"kind": "ok", "detail": "ddl"}

    def _explain(self, body: str) -> dict:
        rest = body[len("explain"):].strip()
        if rest.split(None, 1)[:1] == ["analyze"]:
            return self._query(rest[len("analyze"):].strip(), analyze=True)
        from repro.query.runner import explain_text

        self._acquire(_SCHEMA_SHARED)
        try:
            with self._admitted():
                text = self._traced(lambda: explain_text(self.db, rest))
        finally:
            self._release_if_autocommit()
        return {"kind": "text", "text": text}

    # -- replication hooks -------------------------------------------------

    def _hub_lsn(self) -> int:
        """The replication log's head LSN (0 without a hub).  Under
        concurrency the head may include other statements' entries;
        waiting on it is conservative (never acks too early)."""
        hub = self.manager.hub
        return hub.log.last_lsn if hub is not None else 0

    def _await_quorum(self, lsn: int) -> None:
        """Semi-synchronous commit: with ``sync_replicas=K`` the statement
        is only acknowledged once K followers have applied ``lsn``.

        Called after lock release -- a slow follower must never extend
        lock hold times, only the writer's own latency."""
        hub = self.manager.hub
        if hub is None or lsn <= 0:
            return
        if hub.sync_replicas > 0:
            with self.db.telemetry.waits.wait(REPL_ACK, f"lsn {lsn}"):
                hub.wait_for_sync(lsn)
        else:
            hub.wait_for_sync(lsn)

    def _traced(self, fn):
        """Run ``fn`` with this statement's own tracer installed as the
        engine tracer, and this session's join-mode override applied.

        Both overrides are **thread-local scopes** (``tracer_scope`` /
        ``join_mode_scope``): engine code deep in the stack reads
        ``db.telemetry.tracer`` / ``db.join_mode`` and sees this
        statement's values, while concurrently executing statements on
        other threads see their own (or the defaults).  One session's
        statement can never truncate or interleave another's trace --
        every traced statement owns its :class:`Tracer` -- and a
        session's ``\\set joinmode`` never leaks into statements of
        other sessions.
        """
        with self.db.join_mode_scope(self.join_mode):
            tracer = self._stmt_tracer
            if tracer is None:
                return fn()
            with self.db.telemetry.tracer_scope(tracer):
                return fn()

    # -- meta commands -----------------------------------------------------

    def run_meta(self, command: str, args: list[str]) -> dict:
        """Server-side meta commands; returns a ``text`` result object."""
        with self._mutex:
            if command == "trace":
                return {"kind": "text", "text": self._meta_trace(args)}
            if command == "set":
                return {"kind": "text", "text": self._meta_set(args)}
            if command in ("waits", "ash", "alerts"):
                # observability reads: counters and rings under their own
                # mutexes -- no locks, no engine latch, no page I/O
                return {"kind": "text",
                        "text": self._meta_observability(command, args)}
            footprint = (maintenance_footprint()
                         if command in ("verify", "doctor", "recover", "cold")
                         else _SCHEMA_SHARED)
            locks = self.manager.locks
            locks.acquire(self.owner, footprint)
            try:
                with self._admitted():
                    text = self._meta_text(command, args)
            finally:
                self._release_if_autocommit()
            return {"kind": "text", "text": text}

    def _meta_text(self, command: str, args: list[str]) -> str:
        db = self.db
        if command == "describe":
            from repro.schema.describe import describe_database

            return describe_database(db) or "(empty schema)"
        if command == "stats":
            if args and args[0] == "prom":
                return db.telemetry.metrics.render_prometheus().rstrip("\n")
            stats = db.stats
            effective = self.join_mode or db.join_mode
            source = "session" if self.join_mode else "server default"
            return "\n".join([
                f"physical reads {stats.physical_reads}, writes "
                f"{stats.physical_writes}, logical reads {stats.logical_reads}, "
                f"buffer hits {stats.buffer_hits}",
                f"evictions {stats.evictions}, "
                f"dirty writebacks {stats.dirty_writebacks}",
                f"join mode {effective} ({source})",
                db.telemetry.metrics.render_text(),
            ])
        if command == "monitor":
            return db.monitor.report()
        if command == "replication":
            status_fn = self.manager.replication_status
            if status_fn is None:
                return "(replication not enabled: no server hub)"
            from repro.server.replog import render_status

            return render_status(status_fn())
        if command == "fingerprints":
            return db.telemetry.statements.render_text(
                cache_rates=db.resultcache.fingerprint_rates())
        if command == "cache":
            if args and args[0] == "clear":
                dropped = db.resultcache.invalidate_all(reason="all")
                return f"result cache cleared ({dropped} entries dropped)"
            return db.resultcache.render_text()
        if command == "ledger":
            return db.telemetry.repledger.render_text()
        if command == "verify":
            db.verify()
            return "all replication invariants hold"
        if command == "doctor":
            report = db.doctor(repair=bool(args) and args[0] == "repair")
            return report.render()
        if command == "recover":
            if not db.recovery.needs_recovery:
                return "nothing to recover (no crash since the last recovery)"
            return str(db.recover())
        if command == "cold":
            db.cold_cache()
            return "buffer pool flushed and emptied"
        raise ReproError(f"unknown meta-command \\{command}")

    def _meta_observability(self, command: str, args: list[str]) -> str:
        """``\\waits``, ``\\ash [SECONDS]``, ``\\alerts`` -- latch-free."""
        if command == "waits":
            return self.db.telemetry.waits.render_text()
        if command == "ash":
            ash = self.manager.ash
            if ash is None:
                return ("(no active session history: sampler disabled; "
                        "start the server with --sample-interval > 0)")
            window = 60.0
            if args:
                try:
                    window = float(args[0])
                except ValueError:
                    raise ReproError(
                        f"\\ash window must be seconds, not {args[0]!r}"
                    ) from None
            return ash.render_text(window_s=window if window > 0 else None)
        alerts = self.manager.alerts
        if alerts is None:
            return ("(no alert engine: sampler disabled; start the server "
                    "with --sample-interval > 0)")
        return alerts.render_text()

    def _meta_trace(self, args: list[str]) -> str:
        """Per-session tracing: the dump shows only this session's spans."""
        import json

        mode = args[0] if args else "dump"
        if mode == "on":
            self.trace = True
            return "tracing on"
        if mode == "off":
            self.trace = False
            return "tracing off"
        if mode == "clear":
            self._trace_log.clear()
            return "trace cleared"
        if mode == "dump":
            if not self._trace_log:
                return "(no spans recorded)"
            return "\n".join(json.dumps(span) for span in self._trace_log)
        raise ReproError(f"unknown \\trace mode {mode!r} (on|off|clear|dump)")

    def _meta_set(self, args: list[str]) -> str:
        """Per-session settings: ``joinmode`` and ``cache``."""
        if not args or args[0] not in ("joinmode", "cache"):
            raise ReproError("usage: \\set joinmode naive|batched|default"
                             " | \\set cache on|off|default")
        if args[0] == "cache":
            return self._meta_set_cache(args[1:])
        if len(args) < 2:
            effective = self.join_mode or self.db.join_mode
            source = "session" if self.join_mode else "server default"
            return f"join mode {effective} ({source})"
        value = args[1]
        if value == "default":
            self.join_mode = None
            return f"join mode {self.db.join_mode} (server default)"
        if value not in ("naive", "batched"):
            raise ReproError(
                f"join mode must be 'naive' or 'batched', not {value!r}")
        self.join_mode = value
        return f"join mode {value} (session)"

    def _meta_set_cache(self, args: list[str]) -> str:
        """``\\set cache on|off|default`` -- per-session cache override."""
        def _describe() -> str:
            effective = "on" if self._cache_enabled() else "off"
            source = ("session" if self.cache is not None
                      else "server default")
            return f"result cache {effective} ({source})"

        if not args:
            return _describe()
        value = args[0]
        if value == "default":
            self.cache = None
        elif value in ("on", "off"):
            self.cache = value == "on"
        else:
            raise ReproError(
                f"cache must be 'on', 'off' or 'default', not {value!r}")
        return _describe()

    # -- introspection -----------------------------------------------------

    def info(self) -> dict:
        """One wire-safe row for the ``stats`` verb / ``\\top``."""
        top_wait, top_wait_s = "", 0.0
        # snapshot: a statement finishing concurrently mutates the dict
        for event, seconds in dict(self.wait_totals).items():
            if seconds > top_wait_s:
                top_wait, top_wait_s = event, seconds
        return {
            "id": self.id,
            "name": self.name,
            "in_txn": self.in_txn,
            "tracing": self.trace,
            "join_mode": self.join_mode or self.db.join_mode,
            "cache": "on" if self._cache_enabled() else "off",
            "statements": self.statements,
            "errors": self.errors,
            "last_statement": self.last_statement[:120],
            "last_duration_ms": round(self.last_duration_ms, 3),
            "top_wait": top_wait,
            "top_wait_ms": round(top_wait_s * 1000.0, 3),
            "latch_wait_ms": round(self.latch_wait_s * 1000.0, 3),
            "latch_hold_ms": round(self.latch_hold_s * 1000.0, 3),
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.in_txn = False
        self.manager.locks.forget(self.owner)


class SessionManager:
    """Owns the lock manager, the admission gate, the worker pool, and
    the set of live sessions of one served database."""

    def __init__(self, db, lock_timeout: float = 10.0, workers: int = 4,
                 queue_depth: int = 32) -> None:
        self.db = db
        metrics = db.telemetry.metrics
        waits = getattr(db.telemetry, "waits", NULL_WAITS)
        self.locks = LockManager(timeout=lock_timeout, metrics=metrics,
                                 waits=waits)
        #: the admission gate (kept under the historical ``latch`` name:
        #: ``with sessions.latch:`` still quiesces the engine, but
        #: statements now enter it *shared* and execute concurrently)
        self.latch = EngineGate()
        self.admission = AdmissionController(self.latch, waits=waits,
                                             metrics=metrics)
        #: the server's ReplicationHub (None when replication is off);
        #: sessions bracket statements with its log head for semi-sync acks
        self.hub = None
        #: callable(kind) raising on refused access -- a read replica
        #: installs one that rejects writes and stale reads
        self.access_guard = None
        #: callable() -> dict for the ``\replication`` meta command
        self.replication_status = None
        #: the server's ActiveSessionHistory / AlertEngine /
        #: TimeSeriesStore (None when embedded or the sampler is off);
        #: sessions only read them for the observability meta commands
        self.ash = None
        self.alerts = None
        self.tsstore = None
        self.pool = WorkerPool(workers=workers, queue_depth=queue_depth,
                               metrics=metrics)
        self._sessions: dict[int, Session] = {}
        self._ids = itertools.count(1)
        self._mutex = threading.Lock()
        self._m_active = metrics.gauge(
            "server_active_sessions", "currently open sessions")

    def open_session(self, name: str = "") -> Session:
        with self._mutex:
            session = Session(next(self._ids), self, name)
            self._sessions[session.id] = session
            self._m_active.inc()
            return session

    def close_session(self, session: Session) -> None:
        with self._mutex:
            if self._sessions.pop(session.id, None) is None:
                return
            self._m_active.inc(-1)
        session.close()

    def sessions(self) -> list[Session]:
        with self._mutex:
            return list(self._sessions.values())

    def run(self, fn, timeout: float | None = None):
        """Execute ``fn`` on the worker pool and wait for its result.

        Raises :class:`ServerBusyError` immediately when the bounded
        queue is full -- backpressure, not buffering.
        """
        return self.pool.submit(fn).wait(timeout)

    def shutdown(self) -> None:
        """Drain the pool and close every session."""
        self.pool.shutdown()
        for session in self.sessions():
            self.close_session(session)
