"""HTTP sidecar: /metrics, /health, /slow, /statements, /replication,
/cache, /ash, /timeseries, /alerts.

A :class:`MetricsHTTPServer` runs a stdlib ``ThreadingHTTPServer`` on a
daemon thread next to the TCP server and exposes read-only endpoints
over plain GET:

* ``/metrics`` -- the full registry in the Prometheus text exposition
  format (``text/plain; version=0.0.4``), scrapeable by any Prometheus;
* ``/health`` -- a JSON liveness/durability document (uptime, active
  sessions, WAL posture, the doctor verdict).  Answers 503 when the
  database needs crash recovery or the doctor found it unhealthy, 200
  otherwise, so a load balancer can eject an unhealthy server on status
  alone;
* ``/slow`` -- the slow-query ring as JSON, newest last, plus the
  per-fingerprint grouping of repeated offenders;
* ``/statements`` -- per-fingerprint statement statistics and the
  replication cost/benefit ledger;
* ``/cache`` -- the derived-result cache snapshot (entries, bytes,
  hit/miss/invalidation counters, hottest entries);
* ``/ash`` -- the active session history: sampled per-session wait
  states with an event/fingerprint profile.  Filters via query string:
  ``?window_s=60&event=lock&fingerprint=ab12...&limit=100``;
* ``/timeseries`` -- the in-process metrics time-series store
  (``?window_s=300`` bounds the window, ``?names=a,b`` selects series);
* ``/alerts`` -- every threshold rule's firing/resolved state plus the
  bounded transition history.

Scrapes must not perturb the engine: every handler reads counters, plain
attributes, or its own mutex-guarded ring -- no page I/O, no engine
latch.  The one bounded exception is /health's doctor verdict, which is
re-computed (under the engine latch) at most once per ``health_ttl``
seconds rather than per-scrape: running the doctor on every scrape would
drag pages through the buffer pool and change the physical I/O of
unrelated queries (the observability benchmarks pin scrape overhead to
zero inside one TTL window).

Metric reads are snapshot-safe without locking: the registry's sample
iteration takes atomic ``sorted(dict)`` snapshots under CPython, and
metric keys are never removed while a server is live.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

#: the content type Prometheus expects from a text-format scrape.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _make_handler(server) -> type:
    """Build a request-handler class bound to one repro ``Server``."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):  # noqa: A003 - stdlib signature
            pass  # scrape chatter does not belong on the server's stderr

        def _send(self, status: int, content_type: str, body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, status: int, document: dict) -> None:
            body = json.dumps(document, indent=2).encode("utf-8")
            self._send(status, "application/json; charset=utf-8", body)

        def _query(self) -> dict:
            """First value per query-string key (``?window_s=60&...``)."""
            parts = self.path.split("?", 1)
            if len(parts) < 2:
                return {}
            return {key: values[0]
                    for key, values in parse_qs(parts[1]).items() if values}

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            path = self.path.split("?", 1)[0]
            try:
                if path == "/metrics":
                    text = server.db.telemetry.metrics.render_prometheus()
                    self._send(200, PROMETHEUS_CONTENT_TYPE,
                               text.encode("utf-8"))
                elif path == "/health":
                    health = server.health()
                    # "stale" is a replica past its staleness bound: a
                    # read-routing load balancer must eject it exactly
                    # like an unhealthy primary
                    status = (503 if health["status"] in ("needs_recovery",
                                                          "stale") else 200)
                    self._send_json(status, health)
                elif path == "/replication":
                    self._send_json(200, server._replication_status())
                elif path == "/slow":
                    slowlog = server.db.telemetry.slowlog
                    self._send_json(200, {
                        "threshold_ms": slowlog.threshold_ms,
                        "capacity": slowlog.capacity,
                        "total":
                            server.db.telemetry.metrics.value(
                                "slow_queries_total"),
                        "entries": slowlog.entries(),
                        "grouped": slowlog.grouped(),
                    })
                elif path == "/statements":
                    self._send_json(200, server.statement_stats())
                elif path == "/cache":
                    self._send_json(200, server.db.resultcache.snapshot())
                elif path == "/ash":
                    q = self._query()
                    try:
                        doc = server.ash.snapshot(
                            window_s=(float(q["window_s"])
                                      if "window_s" in q else None),
                            fingerprint=q.get("fingerprint"),
                            event=q.get("event"),
                            limit=max(0, min(
                                int(q.get("limit", 50)), 1000)))
                    except ValueError:
                        self._send_json(400, {"error": "bad query"})
                    else:
                        self._send_json(200, doc)
                elif path == "/timeseries":
                    q = self._query()
                    try:
                        names = ([n for n in q["names"].split(",") if n]
                                 if "names" in q else None)
                        doc = server.tsstore.snapshot(
                            window_s=(float(q["window_s"])
                                      if "window_s" in q else None),
                            names=names)
                    except ValueError:
                        self._send_json(400, {"error": "bad query"})
                    else:
                        self._send_json(200, doc)
                elif path == "/alerts":
                    self._send_json(200, server.alerts.snapshot())
                else:
                    self._send_json(404, {
                        "error": "not found",
                        "endpoints": ["/metrics", "/health", "/slow",
                                      "/statements", "/replication",
                                      "/cache", "/ash", "/timeseries",
                                      "/alerts"],
                    })
            except BrokenPipeError:
                pass  # scraper went away mid-response

    return Handler


class MetricsHTTPServer:
    """The sidecar: a threaded HTTP server over one repro ``Server``."""

    def __init__(self, server, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(server))
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "MetricsHTTPServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-metrics-http", daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
