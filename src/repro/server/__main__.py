"""``python -m repro.server``: serve a database over TCP.

::

    python -m repro.server --port 7878 --snapshot company.frdb
    python -m repro.server --port 0            # ephemeral port, printed
    python -m repro.server --port 7878 --metrics-port 9187
                                               # + HTTP /metrics /health
                                               #   /slow /statements

The server answers SIGTERM / SIGINT (and a client's ``\\shutdown``) with
a graceful drain: in-flight statements finish, the worker pool empties,
connections close.  With ``--save FILE`` the drained database is
snapshotted before exit.

``--metrics-port N`` starts the HTTP observability sidecar (0 picks an
ephemeral port); its address is printed as a second ``metrics on
host:port`` line.  ``--slow-ms`` sets the slow-query threshold the /slow
endpoint and ``slow_queries_total`` count against.  ``--sample-interval``
paces the telemetry sampler feeding the active session history, the
time-series store, and the alert rules (``<= 0`` disables the sampler
thread; ``\\ash`` / ``/ash`` then answer empty).
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.errors import ReproError
from repro.server.service import Server
from repro.snapshot import open_database, save_database


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="serve a field-replication database over TCP")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7878,
                        help="TCP port (0 picks an ephemeral port)")
    parser.add_argument("--snapshot", metavar="FILE",
                        help="start from a snapshot instead of an empty database")
    parser.add_argument("--save", metavar="FILE",
                        help="snapshot the database after a graceful drain")
    parser.add_argument("--max-connections", type=int, default=32)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=32)
    parser.add_argument("--lock-timeout", type=float, default=10.0,
                        help="lock-wait bound in seconds")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="N",
                        help="serve HTTP /metrics, /health, /slow, "
                             "/statements on this port (0 picks an "
                             "ephemeral port)")
    parser.add_argument("--health-ttl", type=float, default=30.0,
                        metavar="SECONDS",
                        help="re-run the /health doctor check at most once "
                             "per this many seconds (<= 0: only at start)")
    parser.add_argument("--slow-ms", type=float, default=None, metavar="MS",
                        help="slow-query log threshold in milliseconds")
    parser.add_argument("--sample-interval", type=float, default=1.0,
                        metavar="SECONDS",
                        help="active-session-history / time-series sampling "
                             "interval (<= 0 disables the sampler thread)")
    parser.add_argument("--ash-capacity", type=int, default=4096, metavar="N",
                        help="active-session-history ring size in samples")
    parser.add_argument("--ts-retention", type=int, default=600, metavar="N",
                        help="time-series points retained per series")
    parser.add_argument("--join-mode", choices=("naive", "batched"),
                        default=None,
                        help="default functional-join strategy (sessions "
                             "may override with \\set joinmode)")
    parser.add_argument("--cache", action="store_true",
                        help="enable the derived-result cache by default "
                             "(sessions may override with \\set cache)")
    parser.add_argument("--cache-bytes", type=int, default=None, metavar="N",
                        help="result-cache byte budget (default 4 MiB)")
    parser.add_argument("--no-replication", action="store_true",
                        help="do not record a replication log (followers "
                             "cannot subscribe)")
    parser.add_argument("--sync-replicas", type=int, default=0, metavar="K",
                        help="acknowledge a write only after K followers "
                             "have applied it (0: fully asynchronous)")
    parser.add_argument("--sync-timeout", type=float, default=5.0,
                        metavar="SECONDS",
                        help="give up on the sync-replica quorum after this "
                             "long (counted, then acked anyway)")
    parser.add_argument("--repl-log-entries", type=int, default=10_000,
                        metavar="N",
                        help="committed statements retained for follower "
                             "catch-up (older followers must re-seed)")
    parser.add_argument("--drain-timeout", type=float, default=10.0,
                        metavar="SECONDS",
                        help="graceful-shutdown bound on flushing the WAL "
                             "tail to connected followers")
    parser.add_argument("--group-commit-ms", type=float, default=0.0,
                        metavar="MS",
                        help="WAL group-commit window: a committing "
                             "statement leads one force for every commit "
                             "that arrives within this window (0: each "
                             "commit forces immediately)")
    args = parser.parse_args(argv)

    try:
        db = open_database(args.snapshot)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.join_mode is not None:
        db.join_mode = args.join_mode
    if args.cache:
        db.resultcache.enabled = True
    if args.cache_bytes is not None:
        db.resultcache.capacity_bytes = max(1, args.cache_bytes)
    if args.slow_ms is not None:
        db.telemetry.slowlog.configure(threshold_ms=args.slow_ms)
    if args.group_commit_ms > 0 and db.recovery.wal is not None:
        db.recovery.wal.group_commit_ms = args.group_commit_ms
    server = Server(db, host=args.host, port=args.port,
                    max_connections=args.max_connections,
                    workers=args.workers, queue_depth=args.queue_depth,
                    lock_timeout=args.lock_timeout,
                    health_ttl=args.health_ttl,
                    replication=not args.no_replication,
                    sync_replicas=args.sync_replicas,
                    sync_timeout=args.sync_timeout,
                    repl_log_entries=args.repl_log_entries,
                    drain_timeout=args.drain_timeout,
                    sample_interval=args.sample_interval,
                    ash_capacity=args.ash_capacity,
                    ts_retention=args.ts_retention)
    server.start()
    print(f"listening on {server.host}:{server.port}", flush=True)
    sidecar = None
    if args.metrics_port is not None:
        from repro.server.httpexpo import MetricsHTTPServer

        sidecar = MetricsHTTPServer(server, host=args.host,
                                    port=args.metrics_port).start()
        print(f"metrics on {sidecar.host}:{sidecar.port}", flush=True)

    def drain(signum, frame):
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, drain)
    signal.signal(signal.SIGINT, drain)
    server.wait()
    if sidecar is not None:
        sidecar.shutdown()
    if args.save:
        try:
            save_database(db, args.save)
            print(f"saved snapshot to {args.save}", flush=True)
        except (OSError, ReproError) as exc:
            print(f"error: cannot save snapshot: {exc}", file=sys.stderr)
            return 1
    print("server drained", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
