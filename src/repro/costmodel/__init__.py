"""The analytical I/O cost model of Section 6."""

from repro.costmodel.claims import ALL_CLAIMS, ClaimResult, check_all_claims
from repro.costmodel.figures import (
    PAPER_FIGURE12,
    PAPER_FIGURE14,
    figure11,
    figure12,
    figure13,
    figure14,
    render_selected_values,
    render_series_table,
    selected_values,
)
from repro.costmodel.model import (
    CostSeries,
    Setting,
    percent_difference,
    read_cost,
    rounded_up,
    sweep,
    total_cost,
    update_cost,
)
from repro.costmodel.params import CostParameters, DerivedParameters, ModelStrategy
from repro.costmodel.sortedprobe import (
    batched_read_cost,
    expected_distinct,
    sorted_probe_pages,
)
from repro.costmodel.yao import expected_pages, yao

__all__ = [
    "ALL_CLAIMS",
    "ClaimResult",
    "CostParameters",
    "CostSeries",
    "DerivedParameters",
    "ModelStrategy",
    "PAPER_FIGURE12",
    "PAPER_FIGURE14",
    "Setting",
    "batched_read_cost",
    "check_all_claims",
    "expected_distinct",
    "expected_pages",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "percent_difference",
    "read_cost",
    "render_selected_values",
    "render_series_table",
    "rounded_up",
    "selected_values",
    "sorted_probe_pages",
    "sweep",
    "total_cost",
    "update_cost",
    "yao",
]
