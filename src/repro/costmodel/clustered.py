"""Cost equations for the clustered-index setting (Section 6.7).

With clustered indexes, R is read in clustered order by read queries
(``f_r P_r`` pages instead of a Yao expectation) and S / S' are read and
written in clustered order by update queries (``2 f_s P_s`` etc.).  The
functional-join terms keep their Yao form: R and S stay *relatively*
unclustered regardless of the indexes.

=================  ======================================================
strategy           read query
=================  ======================================================
no replication     idx_r + f_r P_r + P_s y(|R|,f O_s,f_r|R|) + P_t
in-place           idx_r + f_r P_r + P_t
separate           idx_r + f_r P_r + P_s' y(|R|,f O_s',f_r|R|) + P_t
=================  ======================================================

=================  ======================================================
strategy           update query
=================  ======================================================
no replication     idx_s + 2 f_s P_s
in-place           idx_s + 2 f_s P_s + f_s P_l + 2 P_r y(|R|,O_r,f_s|R|)
separate           idx_s + 2 f_s P_s + 2 f_s P_s'
=================  ======================================================

Propagation into R (the in-place update's last term) keeps its Yao form:
R is ordered by field_r, not by its references to S, so the f_s|R| objects
receiving propagated values are scattered -- "the cost of propagating
updates from S to R with in-place replication does not change when
clustered indexes are used" (Section 6.8).
"""

from __future__ import annotations

from repro.costmodel.params import CostParameters, ModelStrategy
from repro.costmodel.yao import yao


def read_none(params: CostParameters) -> float:
    d = params.derive(ModelStrategy.NO_REPLICATION)
    c = params
    join_s = d.p_s * yao(c.n_r, c.f * d.o_s, c.f_r * c.n_r)
    return d.index_r + c.f_r * d.p_r + join_s + d.p_t


def read_inplace(params: CostParameters) -> float:
    d = params.derive(ModelStrategy.IN_PLACE)
    c = params
    return d.index_r + c.f_r * d.p_r + d.p_t


def read_separate(params: CostParameters) -> float:
    d = params.derive(ModelStrategy.SEPARATE)
    c = params
    join_s_prime = d.p_s_prime * yao(c.n_r, c.f * d.o_s_prime, c.f_r * c.n_r)
    return d.index_r + c.f_r * d.p_r + join_s_prime + d.p_t


def update_none(params: CostParameters) -> float:
    d = params.derive(ModelStrategy.NO_REPLICATION)
    return d.index_s + 2 * params.f_s * d.p_s


def update_inplace(params: CostParameters) -> float:
    d = params.derive(ModelStrategy.IN_PLACE)
    c = params
    cost = d.index_s + 2 * c.f_s * d.p_s
    if not d.links_eliminated:
        cost += c.f_s * d.p_l
    cost += 2 * d.p_r * yao(c.n_r, d.o_r, c.f_s * c.n_r)
    return cost


def update_separate(params: CostParameters) -> float:
    d = params.derive(ModelStrategy.SEPARATE)
    c = params
    return d.index_s + 2 * c.f_s * d.p_s + 2 * c.f_s * d.p_s_prime


READ = {
    ModelStrategy.NO_REPLICATION: read_none,
    ModelStrategy.IN_PLACE: read_inplace,
    ModelStrategy.SEPARATE: read_separate,
}

UPDATE = {
    ModelStrategy.NO_REPLICATION: update_none,
    ModelStrategy.IN_PLACE: update_inplace,
    ModelStrategy.SEPARATE: update_separate,
}
