"""Sorted-probe cost formula for the batched (set-oriented) join.

Yao's function prices a functional join as *unordered* OID probes: each of
the ``c`` qualifying R objects dereferences its S reference independently,
so the expected S pages touched are ``P_s * y(|R|, f*O_s, c)`` -- with a
buffer pool smaller than S, every probe can be a fresh physical read.

The batched executor changes the physics.  It collects a batch of probe
OIDs, sorts them by ``(file_id, page_no, slot)``, dedupes, and resolves
the whole level in one ordered sweep -- so a page is touched at most once
per sweep no matter how many probes land on it, and the sweep's cost is
bounded by *both* the file size and the number of distinct objects probed:

    sorted_probe_pages(P, d) = min(P, d)

where ``d`` is the expected number of *distinct* target objects among the
``c`` probes.  With exactly ``f`` referencers per S object, ``d`` is the
expected number of S objects hit when ``c`` of the ``n_r = f * n_s``
references are chosen without replacement -- which is itself a Yao
expectation over "pages" of ``f`` references each:

    d = n_s * y(n_r, f, c)

The formulas below mirror :mod:`repro.costmodel.unclustered` /
:mod:`repro.costmodel.clustered` read equations with the functional-join
term swapped for the sorted-probe bound; everything else (index descent,
reading R, producing T) is unchanged, and update queries have no
functional-join term so they are identical under both executors.
"""

from __future__ import annotations

from repro.costmodel.model import Setting, read_cost
from repro.costmodel.params import CostParameters, ModelStrategy
from repro.costmodel.yao import yao


def sorted_probe_pages(pages: float, distinct_oids: float) -> float:
    """Pages touched by one ordered sweep of ``distinct_oids`` probes."""
    return float(min(pages, distinct_oids))


def expected_distinct(n_s: float, f: float, probes: float) -> float:
    """Expected distinct S objects among ``probes`` R references (each S
    object owns exactly ``f`` of the ``f * n_s`` references)."""
    if n_s <= 0 or f <= 0 or probes <= 0:
        return 0.0
    return n_s * yao(f * n_s, f, min(probes, f * n_s))


def _join_term(params: CostParameters, strategy: ModelStrategy) -> float:
    """The Yao functional-join term of the matching *read* equation."""
    d = params.derive(strategy)
    c = params
    if strategy is ModelStrategy.NO_REPLICATION:
        return d.p_s * yao(c.n_r, c.f * d.o_s, c.f_r * c.n_r)
    if strategy is ModelStrategy.SEPARATE:
        return d.p_s_prime * yao(c.n_r, c.f * d.o_s_prime, c.f_r * c.n_r)
    return 0.0  # in-place reads have no join to batch


def _sweep_term(params: CostParameters, strategy: ModelStrategy) -> float:
    """Pages the deduped ordered sweep touches.

    The sweep dereferences the expected ``d`` *distinct* targets (the
    sort-and-dedupe saved the duplicates), so its Yao expectation is over
    ``d`` draws -- and it can never exceed the sorted-probe bound
    ``min(pages, d)``: one page per distinct OID, one read per page.
    """
    d = params.derive(strategy)
    c = params
    distinct = expected_distinct(c.n_s, c.f, c.f_r * c.n_r)
    if strategy is ModelStrategy.NO_REPLICATION:
        pages, per_page = d.p_s, d.o_s
    elif strategy is ModelStrategy.SEPARATE:
        pages, per_page = d.p_s_prime, d.o_s_prime
    else:
        return 0.0  # in-place reads have no join to batch
    swept = pages * yao(c.n_s, per_page, min(distinct, c.n_s))
    return min(swept, sorted_probe_pages(pages, distinct))


def batched_read_cost(params: CostParameters, strategy: ModelStrategy,
                      setting: Setting) -> float:
    """Expected I/O of one read query under the batched executor."""
    return (read_cost(params, strategy, setting)
            - _join_term(params, strategy)
            + _sweep_term(params, strategy))
