"""Generators for the paper's result artifacts (Figures 11-14).

* :func:`figure11` / :func:`figure13` -- the four-panel percentage-difference
  graphs (unclustered / clustered), as :class:`~repro.costmodel.model.CostSeries`
  per (f, strategy, f_r);
* :func:`figure12` / :func:`figure14` -- the "selected values" tables of
  C_read / C_update;
* rendering helpers that print the same rows and series the paper shows,
  in ASCII.

``PAPER_FIGURE12`` / ``PAPER_FIGURE14`` hold the published cell values for
paper-vs-measured comparison in tests and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.model import (
    CostSeries,
    Setting,
    read_cost,
    rounded_up,
    sweep,
    update_cost,
)
from repro.costmodel.params import CostParameters, ModelStrategy

#: The sweep dimensions of Figures 11 and 13.
SHARING_LEVELS = (1, 10, 20, 50)
READ_SELECTIVITIES = (0.001, 0.002, 0.005)
STRATEGIES = (ModelStrategy.IN_PLACE, ModelStrategy.SEPARATE)

#: Published selected values (strategy -> (C_read, C_update)).
PAPER_FIGURE12 = {
    1: {
        ModelStrategy.NO_REPLICATION: (43, 22),
        ModelStrategy.IN_PLACE: (23, 42),
        ModelStrategy.SEPARATE: (41, 42),
    },
    20: {
        ModelStrategy.NO_REPLICATION: (691, 22),
        ModelStrategy.IN_PLACE: (407, 427),
        ModelStrategy.SEPARATE: (509, 42),
    },
}

PAPER_FIGURE14 = {
    1: {
        ModelStrategy.NO_REPLICATION: (24, 4),
        ModelStrategy.IN_PLACE: (4, 24),
        ModelStrategy.SEPARATE: (23, 6),
    },
    20: {
        ModelStrategy.NO_REPLICATION: (316, 4),
        ModelStrategy.IN_PLACE: (32, 400),
        ModelStrategy.SEPARATE: (133, 6),
    },
}


@dataclass(frozen=True)
class SelectedValues:
    """One row of a Figure 12 / 14 table."""

    strategy: ModelStrategy
    f: int
    f_r: float
    c_read: int
    c_update: int


def figure_graphs(setting: Setting, points: int = 21,
                  base: CostParameters | None = None) -> dict:
    """All series of one four-panel figure.

    Returns ``{f: {strategy: {f_r: CostSeries}}}``.
    """
    base = base or CostParameters()
    out: dict = {}
    for f in SHARING_LEVELS:
        out[f] = {}
        for strategy in STRATEGIES:
            out[f][strategy] = {}
            for f_r in READ_SELECTIVITIES:
                params = base.with_(f=f, f_r=f_r)
                out[f][strategy][f_r] = sweep(params, strategy, setting, points)
    return out


def figure11(points: int = 21) -> dict:
    """Figure 11: unclustered indexes."""
    return figure_graphs(Setting.UNCLUSTERED, points)


def figure13(points: int = 21) -> dict:
    """Figure 13: clustered indexes."""
    return figure_graphs(Setting.CLUSTERED, points)


def selected_values(setting: Setting, f_values=(1, 20), f_r: float = 0.002,
                    base: CostParameters | None = None) -> list[SelectedValues]:
    """The rows of a Figure 12 / 14 table (rounded up, as in the paper)."""
    base = base or CostParameters()
    rows = []
    for f in f_values:
        params = base.with_(f=f, f_r=f_r)
        for strategy in (
            ModelStrategy.NO_REPLICATION,
            ModelStrategy.IN_PLACE,
            ModelStrategy.SEPARATE,
        ):
            rows.append(
                SelectedValues(
                    strategy=strategy,
                    f=f,
                    f_r=f_r,
                    c_read=rounded_up(read_cost(params, strategy, setting)),
                    c_update=rounded_up(update_cost(params, strategy, setting)),
                )
            )
    return rows


def figure12() -> list[SelectedValues]:
    """Figure 12: selected values, unclustered access."""
    return selected_values(Setting.UNCLUSTERED)


def figure14() -> list[SelectedValues]:
    """Figure 14: selected values, clustered access."""
    return selected_values(Setting.CLUSTERED)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

_STRATEGY_LABEL = {
    ModelStrategy.NO_REPLICATION: "no replication",
    ModelStrategy.IN_PLACE: "in-place replication",
    ModelStrategy.SEPARATE: "separate replication",
}


def render_selected_values(rows: list[SelectedValues], setting: Setting,
                           paper: dict | None = None) -> str:
    """Render a Figure 12 / 14 table, optionally with paper-vs-measured."""
    f_values = sorted({row.f for row in rows})
    lines = [f"Selected values for C_read and C_update ({setting.value} access)"]
    header = f"{'Strategy':24s}"
    for f in f_values:
        header += f" | f={f:<3d} C_read  C_update"
    lines.append(header)
    lines.append("-" * len(header))
    for strategy in (
        ModelStrategy.NO_REPLICATION,
        ModelStrategy.IN_PLACE,
        ModelStrategy.SEPARATE,
    ):
        line = f"{_STRATEGY_LABEL[strategy]:24s}"
        for f in f_values:
            row = next(r for r in rows if r.strategy is strategy and r.f == f)
            line += f" | {row.c_read:11d} {row.c_update:9d}"
        lines.append(line)
        if paper is not None:
            ref = f"{'  (paper)':24s}"
            for f in f_values:
                pr, pu = paper[f][strategy]
                ref += f" | {pr:11d} {pu:9d}"
            lines.append(ref)
    return "\n".join(lines)


def render_series_table(graphs: dict, setting: Setting) -> str:
    """Render the percentage-difference series of a Figure 11 / 13."""
    lines = []
    for f, by_strategy in graphs.items():
        some = next(iter(next(iter(by_strategy.values())).values()))
        lines.append(
            f"\n{setting.value.capitalize()} access, f = {f}, |R| = {f * 10_000:,}"
        )
        header = f"{'P_update':>8s}"
        for strategy in STRATEGIES:
            for f_r in READ_SELECTIVITIES:
                header += f" | {_short(strategy)} fr={f_r:.3f}"
        lines.append(header)
        lines.append("-" * len(header))
        for i, p in enumerate(some.p_updates):
            line = f"{p:8.2f}"
            for strategy in STRATEGIES:
                for f_r in READ_SELECTIVITIES:
                    pct = by_strategy[strategy][f_r].percents[i]
                    line += f" | {pct:+13.1f}%"
            lines.append(line)
    return "\n".join(lines)


def _short(strategy: ModelStrategy) -> str:
    return {"inplace": "in-place", "separate": "separate"}[strategy.value]


def render_ascii_plot(series_by_label: dict[str, CostSeries], width: int = 61,
                      lo: float = -100.0, hi: float = 50.0) -> str:
    """A rough ASCII rendition of one panel (percent vs P_update)."""
    lines = []
    height = 21
    grid = [[" "] * width for __ in range(height)]
    marks = "abcdefgh"
    for mark, (label, series) in zip(marks, series_by_label.items()):
        for p, pct in zip(series.p_updates, series.percents):
            col = round(p * (width - 1))
            clamped = min(max(pct, lo), hi)
            row = round((hi - clamped) / (hi - lo) * (height - 1))
            grid[row][col] = mark
    zero_row = round(hi / (hi - lo) * (height - 1))
    for col in range(width):
        if grid[zero_row][col] == " ":
            grid[zero_row][col] = "-"
    for i, row in enumerate(grid):
        pct = hi - i * (hi - lo) / (height - 1)
        lines.append(f"{pct:+7.0f}% |{''.join(row)}|")
    lines.append(" " * 10 + "0" + " " * (width - 2) + "1")
    lines.append(" " * 10 + "P_update ->")
    for mark, label in zip(marks, series_by_label):
        lines.append(f"   {mark} = {label}")
    return "\n".join(lines)
