"""Machine-checkable versions of the paper's prose claims.

Sections 6.6, 6.8 and the conclusion state a number of qualitative and
quantitative results beyond the figures themselves.  Each claim here
recomputes the relevant sweep and returns a :class:`ClaimResult`, so the
benchmark harness (and the test suite) can report which claims hold.

The claims:

1.  Unclustered, P_update < ~0.15: in-place beats separate, cutting I/O by
    roughly 15-45 %.
2.  Unclustered, P_update > ~0.35, f > 1: separate beats in-place, cutting
    I/O by roughly 10-30 % over a wide range.
3.  Separate replication at f = 1 provides almost no read benefit.
4.  In-place performs best at small f; its relative benefit shrinks as f
    grows (propagation cost scales with f).
5.  Separate performs best at large f (the S' size advantage grows).
6.  The f_r lines "flip" for separate replication between f = 10 and
    f = 50: at f = 10 the largest f_r is best, at f = 50 the smallest.
7.  Clustered, P_update < ~0.2: in-place cuts I/O by roughly 40-90 %.
8.  Clustered: separate cuts I/O by roughly 25-70 % over a wide range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.model import Setting, percent_difference
from repro.costmodel.params import CostParameters, ModelStrategy


@dataclass(frozen=True)
class ClaimResult:
    """One checked claim."""

    claim_id: str
    description: str
    holds: bool
    detail: str


def _pct(params, strategy, setting, p):
    return percent_difference(params, strategy, setting, p)


def claim_inplace_beats_separate_at_low_p() -> ClaimResult:
    """Claim 1: unclustered, P < 0.15 -> in-place wins, saving 15-45 %."""
    savings = []
    ok = True
    for f in (1, 10, 20, 50):
        for f_r in (0.001, 0.002, 0.005):
            params = CostParameters(f=f, f_r=f_r)
            for p in (0.0, 0.05, 0.10):
                inp = _pct(params, ModelStrategy.IN_PLACE, Setting.UNCLUSTERED, p)
                sep = _pct(params, ModelStrategy.SEPARATE, Setting.UNCLUSTERED, p)
                # At f = 50 the crossover arrives slightly before 0.10 (the
                # paper's "roughly 0.15" is approximate); require dominance
                # up to 0.10 for f <= 20 and at 0.05 for f = 50.
                if f <= 20 or p <= 0.05:
                    ok &= inp <= sep + 1e-9
                savings.append(-inp)
    lo, hi = min(savings), max(savings)
    ok &= 12 <= lo and hi <= 50
    return ClaimResult(
        "1", "unclustered, P<0.15: in-place wins by ~15-45%",
        ok, f"in-place savings span {lo:.0f}%..{hi:.0f}%",
    )


def claim_separate_beats_inplace_at_high_p() -> ClaimResult:
    """Claim 2: unclustered, P > 0.35, f > 1 -> separate wins, 10-30 %."""
    ok = True
    savings = []
    for f in (10, 20, 50):
        for f_r in (0.001, 0.002, 0.005):
            params = CostParameters(f=f, f_r=f_r)
            for p in (0.4, 0.6, 0.8):
                inp = _pct(params, ModelStrategy.IN_PLACE, Setting.UNCLUSTERED, p)
                sep = _pct(params, ModelStrategy.SEPARATE, Setting.UNCLUSTERED, p)
                ok &= sep <= inp + 1e-9
                # The 10-30% band is the paper's aggregate over moderate
                # update probabilities / selectivities; measure it there.
                if f_r <= 0.002 and p <= 0.4:
                    savings.append(-sep)
    lo, hi = min(savings), max(savings)
    ok &= lo >= 5 and hi <= 35
    return ClaimResult(
        "2", "unclustered, P>0.35, f>1: separate wins by ~10-30%",
        ok, f"separate savings span {lo:.0f}%..{hi:.0f}%",
    )


def claim_separate_useless_at_f1() -> ClaimResult:
    """Claim 3: at f = 1 separate replication barely beats no replication."""
    params = CostParameters(f=1, f_r=0.002)
    at_zero = _pct(params, ModelStrategy.SEPARATE, Setting.UNCLUSTERED, 0.0)
    holds = -10 < at_zero <= 0
    return ClaimResult(
        "3", "f=1: separate ~ no replication for reads",
        holds, f"read-only percentage difference {at_zero:.1f}%",
    )


def claim_inplace_best_at_small_f() -> ClaimResult:
    """Claim 4: in-place's benefit at P=0.3 shrinks as f grows."""
    diffs = [
        _pct(CostParameters(f=f, f_r=0.001), ModelStrategy.IN_PLACE,
             Setting.UNCLUSTERED, 0.3)
        for f in (1, 10, 20, 50)
    ]
    holds = all(a <= b for a, b in zip(diffs, diffs[1:]))
    return ClaimResult(
        "4", "in-place benefit decreases with f (update propagation)",
        holds, f"pct at P=0.3 for f=1,10,20,50: {[f'{d:.1f}' for d in diffs]}",
    )


def claim_separate_best_at_large_f() -> ClaimResult:
    """Claim 5: separate's read-side benefit grows from f = 1 to f = 20."""
    diffs = [
        _pct(CostParameters(f=f, f_r=0.001), ModelStrategy.SEPARATE,
             Setting.UNCLUSTERED, 0.0)
        for f in (1, 10, 20)
    ]
    holds = all(a >= b for a, b in zip(diffs, diffs[1:]))
    return ClaimResult(
        "5", "separate benefit increases with f (S' size advantage)",
        holds, f"pct at P=0 for f=1,10,20: {[f'{d:.1f}' for d in diffs]}",
    )


def claim_fr_flip_between_f10_and_f50() -> ClaimResult:
    """Claim 6: for separate, the best f_r flips between f=10 and f=50."""
    def pct(f, f_r):
        return _pct(CostParameters(f=f, f_r=f_r), ModelStrategy.SEPARATE,
                    Setting.UNCLUSTERED, 0.0)

    at_10 = pct(10, 0.005) < pct(10, 0.001)   # more data read -> bigger win
    at_50 = pct(50, 0.001) < pct(50, 0.005)   # R cost dominates -> flip
    return ClaimResult(
        "6", "f_r lines flip for separate between f=10 and f=50",
        at_10 and at_50,
        f"f=10: fr=.005 {'beats' if at_10 else 'loses to'} fr=.001; "
        f"f=50: fr=.001 {'beats' if at_50 else 'loses to'} fr=.005",
    )


def claim_clustered_inplace_savings() -> ClaimResult:
    """Claim 7: clustered, P < 0.2 -> in-place cuts I/O by ~40-90 %."""
    savings = []
    for f in (1, 10, 20, 50):
        for f_r in (0.001, 0.002, 0.005):
            params = CostParameters(f=f, f_r=f_r)
            for p in (0.0, 0.1, 0.15):
                savings.append(
                    -_pct(params, ModelStrategy.IN_PLACE, Setting.CLUSTERED, p)
                )
    lo, hi = min(savings), max(savings)
    holds = 35 <= lo and hi <= 95
    return ClaimResult(
        "7", "clustered, P<0.2: in-place saves ~40-90%",
        holds, f"savings span {lo:.0f}%..{hi:.0f}%",
    )


def claim_clustered_separate_savings() -> ClaimResult:
    """Claim 8: clustered, f > 1 -> separate saves ~25-70 % over a wide range."""
    savings = []
    for f in (10, 20, 50):
        for f_r in (0.001, 0.002, 0.005):
            params = CostParameters(f=f, f_r=f_r)
            for p in (0.0, 0.2, 0.4, 0.6, 0.8):
                savings.append(
                    -_pct(params, ModelStrategy.SEPARATE, Setting.CLUSTERED, p)
                )
    lo, hi = min(savings), max(savings)
    holds = 20 <= lo and hi <= 75
    return ClaimResult(
        "8", "clustered, f>1: separate saves ~25-70%",
        holds, f"savings span {lo:.0f}%..{hi:.0f}%",
    )


ALL_CLAIMS = (
    claim_inplace_beats_separate_at_low_p,
    claim_separate_beats_inplace_at_high_p,
    claim_separate_useless_at_f1,
    claim_inplace_best_at_small_f,
    claim_separate_best_at_large_f,
    claim_fr_flip_between_f10_and_f50,
    claim_clustered_inplace_savings,
    claim_clustered_separate_savings,
)


def check_all_claims() -> list[ClaimResult]:
    """Evaluate every encoded claim."""
    return [claim() for claim in ALL_CLAIMS]
