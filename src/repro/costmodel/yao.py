"""Yao's function [Yao77].

``y(a, b, c)``: given a file of *a* objects on pages of *b* objects each
(so each page "claims" *b* of the objects), the probability that a given
page is touched when *c* objects are chosen uniformly without replacement:

    y(a, b, c) = 1 - C(a - b, c) / C(a, c)

The paper writes it as ``1 - [ (a-b choose c) / (a choose c) ]`` and uses
``P_x * y(...)`` as the expected number of pages read.  The binomials are
evaluated exactly in log space (``lgamma``) so the model stays numerically
stable at |R| = 500,000.
"""

from __future__ import annotations

import math

from repro.errors import CostModelError


def yao(a: float, b: float, c: float) -> float:
    """Probability a given page (holding ``b`` of ``a`` objects) is touched
    when ``c`` objects are picked uniformly without replacement."""
    if a < 0 or b < 0 or c < 0:
        raise CostModelError(f"yao arguments must be non-negative: {(a, b, c)}")
    if c == 0 or b == 0:
        return 0.0
    if c > a:
        raise CostModelError(f"cannot choose {c} from {a} objects")
    if b >= a or c > a - b:
        return 1.0
    # exact in log space: C(a-b, c) / C(a, c)
    log_ratio = (
        math.lgamma(a - b + 1)
        - math.lgamma(a - b - c + 1)
        - math.lgamma(a + 1)
        + math.lgamma(a - c + 1)
    )
    return 1.0 - math.exp(log_ratio)


def expected_pages(total_pages: float, a: float, b: float, c: float) -> float:
    """``P * y(a, b, c)``: expected pages touched out of ``total_pages``."""
    return total_pages * yao(a, b, c)
