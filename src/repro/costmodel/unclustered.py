"""Cost equations for the unclustered-index setting (Section 6.5).

Each function returns the expected I/O (page accesses) of one query under
one strategy, term for term as derived in the paper:

=================  ======================================================
strategy           read query                                 (Sec.)
=================  ======================================================
no replication     idx_r + P_r y(|R|,O_r,f_r|R|)
                         + P_s y(|R|,f O_s,f_r|R|) + P_t      (6.5.1)
in-place           idx_r + P_r y(|R|,O_r,f_r|R|) + P_t        (6.5.3)
separate           idx_r + P_r y(|R|,O_r,f_r|R|)
                         + P_s' y(|R|,f O_s',f_r|R|) + P_t    (6.5.5)
=================  ======================================================

=================  ======================================================
strategy           update query
=================  ======================================================
no replication     idx_s + 2 P_s y(|S|,O_s,f_s|S|)            (6.5.2)
in-place           idx_s + 2 P_s y(|S|,O_s,f_s|S|)
                         + P_l y(|S|,O_l,f_s|S|)
                         + 2 P_r y(|R|,O_r,f_s|R|)            (6.5.4)
separate           idx_s + 2 P_s y(|S|,O_s,f_s|S|)
                         + 2 P_s' y(|S|,O_s',f_s|S|)          (6.5.6)
=================  ======================================================
"""

from __future__ import annotations

from repro.costmodel.params import CostParameters, DerivedParameters, ModelStrategy
from repro.costmodel.yao import yao


def _read_common(d: DerivedParameters) -> float:
    """idx_r + cost to read the qualifying R objects."""
    c = d.core
    return d.index_r + d.p_r * yao(c.n_r, d.o_r, c.f_r * c.n_r)


def read_none(params: CostParameters) -> float:
    """Read query, no replication: R is functionally joined with S."""
    d = params.derive(ModelStrategy.NO_REPLICATION)
    c = params
    join_s = d.p_s * yao(c.n_r, c.f * d.o_s, c.f_r * c.n_r)
    return _read_common(d) + join_s + d.p_t


def read_inplace(params: CostParameters) -> float:
    """Read query, in-place: no join at all."""
    d = params.derive(ModelStrategy.IN_PLACE)
    return _read_common(d) + d.p_t


def read_separate(params: CostParameters) -> float:
    """Read query, separate: R is joined with the small S' instead of S."""
    d = params.derive(ModelStrategy.SEPARATE)
    c = params
    join_s_prime = d.p_s_prime * yao(c.n_r, c.f * d.o_s_prime, c.f_r * c.n_r)
    return _read_common(d) + join_s_prime + d.p_t


def _update_s(d: DerivedParameters) -> float:
    """idx_s + read-modify-write of the qualifying S pages."""
    c = d.core
    return d.index_s + 2 * d.p_s * yao(c.n_s, d.o_s, c.f_s * c.n_s)


def update_none(params: CostParameters) -> float:
    """Update query, no replication: only S is touched."""
    return _update_s(params.derive(ModelStrategy.NO_REPLICATION))


def update_inplace(params: CostParameters) -> float:
    """Update query, in-place: read L, then propagate into R.

    With singleton-link elimination (f = 1, Section 4.3.1) the L term
    vanishes -- each link object was inlined into its owner.
    """
    d = params.derive(ModelStrategy.IN_PLACE)
    c = params
    cost = _update_s(d)
    if not d.links_eliminated:
        cost += d.p_l * yao(c.n_s, d.o_l, c.f_s * c.n_s)
    # every updated S object propagates to f objects in R: f_s·f·|S| = f_s|R|
    cost += 2 * d.p_r * yao(c.n_r, d.o_r, c.f_s * c.n_r)
    return cost


def update_separate(params: CostParameters) -> float:
    """Update query, separate: each update also touches one S' object."""
    d = params.derive(ModelStrategy.SEPARATE)
    c = params
    return _update_s(d) + 2 * d.p_s_prime * yao(c.n_s, d.o_s_prime, c.f_s * c.n_s)


READ = {
    ModelStrategy.NO_REPLICATION: read_none,
    ModelStrategy.IN_PLACE: read_inplace,
    ModelStrategy.SEPARATE: read_separate,
}

UPDATE = {
    ModelStrategy.NO_REPLICATION: update_none,
    ModelStrategy.IN_PLACE: update_inplace,
    ModelStrategy.SEPARATE: update_separate,
}
