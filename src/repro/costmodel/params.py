"""Cost-model parameters (Figure 10 of the paper).

Core parameters carry the paper's defaults; everything else is derived.
Because object sizes differ per replication strategy ("the values actually
used for r and s will differ from strategy to strategy"), the derived
quantities are exposed through :meth:`CostParameters.derive`, which takes
the strategy and applies the per-strategy size adjustments:

* **in-place**: ``r`` grows by the replicated field (``k``); ``s`` grows by
  one ``(link-OID, link-ID)`` pair; the link file L holds one object of
  ``l = link_id + type_tag + f * oid`` bytes per object in S.
* **separate**: S' objects are ``s' = k + type_tag`` bytes; following the
  paper, ``r`` and ``s`` are left at their base sizes (the replica
  reference and the replica entry are absorbed into the base figures --
  this choice reproduces the published Figure 12/14 cells, see
  EXPERIMENTS.md).

``eliminate_singleton_links`` applies Section 4.3.1 at ``f = 1``: every
link object would hold exactly one OID, so link objects are inlined and
the L terms of the in-place update cost vanish.  The published selected
values (Figure 12: C_update = 42 at f = 1) are only reproducible with this
optimization on, so it defaults on.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from repro.errors import CostModelError


class ModelStrategy(enum.Enum):
    """The three strategies the model compares."""

    NO_REPLICATION = "none"
    IN_PLACE = "inplace"
    SEPARATE = "separate"


@dataclass(frozen=True)
class CostParameters:
    """Core parameters; defaults are the paper's (Figure 10)."""

    B: int = 4056              #: usable bytes per disk page
    h: int = 20                #: per-object storage overhead
    m: int = 350               #: B+-tree fanout
    n_s: int = 10_000          #: |S|
    f: int = 1                 #: sharing level (each S object has f referencers)
    f_r: float = 0.001         #: read-query selectivity (fraction of R)
    f_s: float = 0.001         #: update-query selectivity (fraction of S)
    oid_bytes: int = 8
    link_id_bytes: int = 1
    type_tag_bytes: int = 2
    k: int = 20                #: size of the replicated field
    r: int = 100               #: base size of R objects
    s: int = 200               #: base size of S objects
    t: int = 100               #: size of output (T) objects
    eliminate_singleton_links: bool = True

    def __post_init__(self) -> None:
        if min(self.B, self.h, self.m, self.n_s, self.f, self.k, self.r, self.s, self.t) <= 0:
            raise CostModelError("core parameters must be positive")
        if not (0 < self.f_r <= 1 and 0 < self.f_s <= 1):
            raise CostModelError("selectivities must be in (0, 1]")

    @property
    def n_r(self) -> int:
        """|R| = f * |S|."""
        return self.f * self.n_s

    def with_(self, **changes) -> "CostParameters":
        """A copy with some core parameters changed."""
        return replace(self, **changes)

    def derive(self, strategy: ModelStrategy) -> "DerivedParameters":
        """Strategy-adjusted object sizes and page counts."""
        r, s = self.r, self.s
        if strategy is ModelStrategy.IN_PLACE:
            r = self.r + self.k
            s = self.s + self.oid_bytes + self.link_id_bytes
        s_prime = self.k + self.type_tag_bytes
        l = self.link_id_bytes + self.type_tag_bytes + self.f * self.oid_bytes
        return DerivedParameters(core=self, strategy=strategy,
                                 r=r, s=s, s_prime=s_prime, l=l)


@dataclass(frozen=True)
class DerivedParameters:
    """Everything below the double line of Figure 10."""

    core: CostParameters
    strategy: ModelStrategy
    r: int
    s: int
    s_prime: int
    l: int

    def _per_page(self, size: int) -> int:
        return self.core.B // (self.core.h + size)

    # objects per page ---------------------------------------------------

    @property
    def o_r(self) -> int:
        return self._per_page(self.r)

    @property
    def o_s(self) -> int:
        return self._per_page(self.s)

    @property
    def o_s_prime(self) -> int:
        return self._per_page(self.s_prime)

    @property
    def o_l(self) -> int:
        return self._per_page(self.l)

    @property
    def o_t(self) -> int:
        return self._per_page(self.core.t)

    # page counts ----------------------------------------------------------

    @property
    def p_r(self) -> int:
        return math.ceil(self.core.n_r / self.o_r)

    @property
    def p_s(self) -> int:
        return math.ceil(self.core.n_s / self.o_s)

    @property
    def p_s_prime(self) -> int:
        return math.ceil(self.core.n_s / self.o_s_prime)

    @property
    def p_l(self) -> int:
        return math.ceil(self.core.n_s / self.o_l)

    @property
    def p_t(self) -> int:
        return math.ceil(self.core.f_r * self.core.n_r / self.o_t)

    # index costs ----------------------------------------------------------

    def index_read_cost(self, n: int, selectivity: float) -> float:
        """Descend the B+-tree, then scan leaves for the qualifying OIDs."""
        descend = math.ceil(math.log(n, self.core.m))
        leaves = max(0.0, math.ceil(selectivity * n / self.core.m - 1))
        return descend + leaves

    @property
    def index_r(self) -> float:
        """Cost to read the index on field_r for one read query."""
        return self.index_read_cost(self.core.n_r, self.core.f_r)

    @property
    def index_s(self) -> float:
        """Cost to read the index on field_s for one update query."""
        return self.index_read_cost(self.core.n_s, self.core.f_s)

    @property
    def links_eliminated(self) -> bool:
        """Section 4.3.1 at f = 1: singleton link objects are inlined."""
        return self.core.eliminate_singleton_links and self.core.f == 1
