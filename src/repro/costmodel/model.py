"""C_total and the strategy comparison (Section 6).

For a query mix with update probability ``P_update``:

    C_total = (1 - P_update) * C_read + P_update * C_update

Figures 11 and 13 plot the percentage difference in C_total between each
replication strategy and no replication, with P_update swept from 0 to 1.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.costmodel import clustered, unclustered
from repro.costmodel.params import CostParameters, ModelStrategy
from repro.errors import CostModelError


class Setting(enum.Enum):
    """Which index configuration the analysis assumes."""

    UNCLUSTERED = "unclustered"
    CLUSTERED = "clustered"


_EQUATIONS = {
    Setting.UNCLUSTERED: (unclustered.READ, unclustered.UPDATE),
    Setting.CLUSTERED: (clustered.READ, clustered.UPDATE),
}


def read_cost(params: CostParameters, strategy: ModelStrategy, setting: Setting) -> float:
    """Expected I/O of one read query."""
    return _EQUATIONS[setting][0][strategy](params)


def update_cost(params: CostParameters, strategy: ModelStrategy, setting: Setting) -> float:
    """Expected I/O of one update query."""
    return _EQUATIONS[setting][1][strategy](params)


def total_cost(params: CostParameters, strategy: ModelStrategy, setting: Setting,
               p_update: float) -> float:
    """C_total for the given update probability."""
    if not 0.0 <= p_update <= 1.0:
        raise CostModelError(f"update probability {p_update} not in [0, 1]")
    return (
        (1.0 - p_update) * read_cost(params, strategy, setting)
        + p_update * update_cost(params, strategy, setting)
    )


def percent_difference(params: CostParameters, strategy: ModelStrategy,
                       setting: Setting, p_update: float) -> float:
    """Percentage difference in C_total relative to no replication.

    Negative values mean the strategy beats no replication (the region the
    paper's graphs spend most of their ink in).
    """
    base = total_cost(params, ModelStrategy.NO_REPLICATION, setting, p_update)
    ours = total_cost(params, strategy, setting, p_update)
    return 100.0 * (ours - base) / base


@dataclass(frozen=True)
class CostSeries:
    """One line of a Figure 11 / 13 graph."""

    strategy: ModelStrategy
    setting: Setting
    f: int
    f_r: float
    p_updates: tuple[float, ...]
    percents: tuple[float, ...]

    def crossover(self) -> float | None:
        """The smallest swept P_update at which the strategy stops beating
        no replication (None if it never stops or never starts winning)."""
        for p, pct in zip(self.p_updates, self.percents):
            if pct > 0:
                return p
        return None


def sweep(params: CostParameters, strategy: ModelStrategy, setting: Setting,
          points: int = 21) -> CostSeries:
    """Sweep P_update over [0, 1] (inclusive) in ``points`` steps."""
    if points < 2:
        raise CostModelError("a sweep needs at least two points")
    p_updates = tuple(i / (points - 1) for i in range(points))
    percents = tuple(
        percent_difference(params, strategy, setting, p) for p in p_updates
    )
    return CostSeries(strategy, setting, params.f, params.f_r, p_updates, percents)


def rounded_up(value: float) -> int:
    """The paper's table convention: "fractional values were rounded up"."""
    return math.ceil(value - 1e-9)
