"""A replication advisor built on the analytical cost model.

The paper leans on a knowledgeable DBA: "replication should only be
specified on reference paths that are frequently accessed and, at the same
time, infrequently updated" (Section 3.1).  The advisor mechanises that
judgement: given a path's observed workload -- how often queries read it,
how often its source data is updated, the sharing level, the selectivities
-- it evaluates C_total under all three strategies and recommends the
cheapest, with the margin and the DDL to apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.model import Setting, total_cost
from repro.costmodel.params import CostParameters, ModelStrategy
from repro.errors import CostModelError


@dataclass(frozen=True)
class PathWorkload:
    """Observed / estimated workload on one reference path."""

    #: probability that a query against the mix is an update (the model's
    #: P_update); reads make up the rest.
    update_probability: float
    #: sharing level: average referencers per referenced object.
    f: int = 1
    #: read / update query selectivities.
    f_r: float = 0.001
    f_s: float = 0.001
    #: whether the driving indexes are clustered.
    clustered: bool = False
    #: size knobs (defaults are the paper's).
    n_s: int = 10_000
    k: int = 20
    r: int = 100
    s: int = 200

    def __post_init__(self) -> None:
        if not 0.0 <= self.update_probability <= 1.0:
            raise CostModelError("update probability must be in [0, 1]")

    def parameters(self) -> CostParameters:
        """The cost-model parameters this workload implies."""
        return CostParameters(
            n_s=self.n_s, f=self.f, f_r=self.f_r, f_s=self.f_s,
            k=self.k, r=self.r, s=self.s,
        )

    @property
    def setting(self) -> Setting:
        return Setting.CLUSTERED if self.clustered else Setting.UNCLUSTERED


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict for one path."""

    strategy: ModelStrategy
    costs: dict = field(default_factory=dict)
    #: percentage saved vs. no replication (0 when the verdict IS none).
    saving_percent: float = 0.0
    reasoning: str = ""

    def ddl(self, path_text: str) -> str | None:
        """The statement to apply (None when replication doesn't pay)."""
        if self.strategy is ModelStrategy.NO_REPLICATION:
            return None
        if self.strategy is ModelStrategy.SEPARATE:
            return f"replicate {path_text} using separate"
        return f"replicate {path_text}"


#: require at least this much predicted saving before recommending the
#: extra storage and maintenance machinery.
MIN_WORTHWHILE_SAVING = 2.0  # percent


def recommend(workload: PathWorkload) -> Recommendation:
    """Evaluate all strategies on the workload and pick the cheapest."""
    params = workload.parameters()
    p = workload.update_probability
    costs = {
        strategy: total_cost(params, strategy, workload.setting, p)
        for strategy in ModelStrategy
    }
    base = costs[ModelStrategy.NO_REPLICATION]
    best = min(costs, key=costs.get)
    saving = 100.0 * (base - costs[best]) / base
    if best is not ModelStrategy.NO_REPLICATION and saving < MIN_WORTHWHILE_SAVING:
        best, saving = ModelStrategy.NO_REPLICATION, 0.0
    return Recommendation(
        strategy=best,
        costs=costs,
        saving_percent=max(saving, 0.0),
        reasoning=_explain(workload, costs, best, saving),
    )


def _explain(workload: PathWorkload, costs, best, saving) -> str:
    p = workload.update_probability
    parts = [
        f"P_update={p:.2f}, f={workload.f}, "
        f"{'clustered' if workload.clustered else 'unclustered'} indexes."
    ]
    if best is ModelStrategy.NO_REPLICATION:
        parts.append(
            "Updates are too frequent (or sharing too unfavourable) for "
            "replication to pay for its propagation cost."
        )
    elif best is ModelStrategy.IN_PLACE:
        parts.append(
            f"In-place replication eliminates the functional join outright; "
            f"at this update rate the propagation to f={workload.f} "
            f"referencers stays affordable (saves {saving:.0f}%)."
        )
    else:
        parts.append(
            f"Separate replication keeps update propagation cheap (one "
            f"shared replica per source object) while the small S' still "
            f"shrinks the join (saves {saving:.0f}%)."
        )
    return " ".join(parts)


def sweep_recommendations(workload: PathWorkload,
                          p_updates=(0.0, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0)) -> list:
    """The verdict across a grid of update probabilities."""
    out = []
    for p in p_updates:
        w = PathWorkload(
            update_probability=p, f=workload.f, f_r=workload.f_r,
            f_s=workload.f_s, clustered=workload.clustered,
            n_s=workload.n_s, k=workload.k, r=workload.r, s=workload.s,
        )
        out.append((p, recommend(w)))
    return out
