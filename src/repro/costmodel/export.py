"""CSV export of the figure data.

The rendered ASCII artifacts are good for eyeballs; the CSV twins are for
plotting tools.  Each Figure 11/13 CSV has one row per swept P_update and
one column per (strategy, f_r) line, matching the paper's panel layout;
the Figure 12/14 CSVs are the tables verbatim.
"""

from __future__ import annotations

import csv
import io

from repro.costmodel.figures import (
    READ_SELECTIVITIES,
    STRATEGIES,
    SelectedValues,
)
from repro.costmodel.model import Setting


def series_csv(graphs: dict, f: int) -> str:
    """One panel of Figure 11/13 as CSV text."""
    by_strategy = graphs[f]
    out = io.StringIO()
    writer = csv.writer(out)
    header = ["p_update"]
    for strategy in STRATEGIES:
        for f_r in READ_SELECTIVITIES:
            header.append(f"{strategy.value}_fr{f_r}")
    writer.writerow(header)
    some = by_strategy[STRATEGIES[0]][READ_SELECTIVITIES[0]]
    for i, p in enumerate(some.p_updates):
        row = [f"{p:.4f}"]
        for strategy in STRATEGIES:
            for f_r in READ_SELECTIVITIES:
                row.append(f"{by_strategy[strategy][f_r].percents[i]:.4f}")
        writer.writerow(row)
    return out.getvalue()


def figure_csvs(graphs: dict) -> dict[int, str]:
    """All four panels, keyed by sharing level f."""
    return {f: series_csv(graphs, f) for f in graphs}


def selected_values_csv(rows: list[SelectedValues], setting: Setting) -> str:
    """A Figure 12/14 table as CSV text."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["setting", "strategy", "f", "f_r", "c_read", "c_update"])
    for row in rows:
        writer.writerow(
            [setting.value, row.strategy.value, row.f, row.f_r, row.c_read, row.c_update]
        )
    return out.getvalue()
