"""A self-tuning order catalog: monitor -> advisor -> replicate.

A classic orders/customers/regions schema runs a reporting workload full
of functional joins.  The workload monitor observes them, the cost-model
advisor turns the observations into ``replicate`` statements, and applying
them cuts the reporting queries' I/O -- the full loop the paper's
"knowledgeable DBA" performs, automated.

Run:  python examples/order_catalog.py
"""

import random

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.monitor import apply_recommendations

# Selective reports (tens of rows out of thousands): each qualifying order
# costs one page for itself plus one scattered page per functional join --
# the regime where the paper shows replication at its best.
REPORTS = [
    "retrieve (Orders.item, Orders.customer.name) where Orders.total >= 980",
    "retrieve (Orders.item, Orders.customer.region.name) where Orders.total >= 985",
    "retrieve (Orders.customer.name, Orders.customer.region.name) where Orders.total >= 990",
    "retrieve (Orders.customer.region.name, count(Orders.item), avg(Orders.total)) "
    "where Orders.total >= 985 group by Orders.customer.region.name",
]


def build(db: Database, rng: random.Random) -> dict:
    db.define_type(TypeDefinition("REGION", [char_field("name", 16), int_field("tax")]))
    db.define_type(
        TypeDefinition(
            "CUSTOMER",
            [char_field("name", 20), char_field("profile", 150),
             ref_field("region", "REGION")],
        )
    )
    db.define_type(
        TypeDefinition(
            "ORDER",
            [char_field("item", 20), int_field("total"), ref_field("customer", "CUSTOMER")],
        )
    )
    db.create_set("Regions", "REGION")
    db.create_set("Customers", "CUSTOMER")
    db.create_set("Orders", "ORDER")
    regions = [db.insert("Regions", {"name": f"region{i}", "tax": i}) for i in range(8)]
    customers = [
        db.insert("Customers", {"name": f"cust{i:04d}", "profile": "x" * 100,
                                "region": rng.choice(regions)})
        for i in range(1200)
    ]
    for i in range(2500):
        db.insert(
            "Orders",
            {"item": f"item{i % 97}", "total": rng.randrange(1000),
             "customer": rng.choice(customers)},
        )
    db.build_index("Orders.total")
    return {"regions": regions, "customers": customers}


def run_reports(db: Database) -> int:
    total = 0
    for query in REPORTS:
        db.cold_cache()
        total += db.execute(query).io.total_io
    return total


def main() -> None:
    rng = random.Random(8)
    db = Database(buffer_frames=2048)
    handles = build(db, rng)

    print("== reporting workload, unreplicated ==")
    before = run_reports(db)
    print(f"  total I/O for {len(REPORTS)} reports: {before}")

    # a few writes, so the monitor sees the conflict side too
    for i in range(3):
        db.update("Customers", handles["customers"][i], {"name": f"renamed{i}"})

    print("\n== what the monitor observed ==")
    print(db.monitor.report())

    print("\n== advisor verdicts ==")
    candidates = db.monitor.candidates(f=2, f_r=0.01)
    for cand in candidates:
        print(f"  {cand.path_text:35s} P_upd~{cand.estimated_p_update:.2f} "
              f"-> {cand.recommendation.strategy.value:8s} "
              f"({cand.ddl or 'leave unreplicated'})")

    applied = apply_recommendations(db, candidates)
    print(f"\napplied: {applied}")
    db.verify()

    print("\n== reporting workload, after auto-replication ==")
    after = run_reports(db)
    print(f"  total I/O for {len(REPORTS)} reports: {after}")
    print(f"  saved {100 * (before - after) / before:.0f}%")

    db.monitor.reset()
    run_reports(db)
    leftover = db.monitor.path_observations()
    print(f"  functional joins still observed: {len(leftover)}")


if __name__ == "__main__":
    main()
