"""Indexing on replicated data (Section 3.3.4) vs a Gemstone path index.

Builds a 2-level path ``Emp1.dept.org.name``, then answers the same
associative lookup three ways and reports the I/O of each:

1. no index at all -- scan Emp1 and functionally join each object,
2. a Gemstone-style multi-component path index (three B+-trees, §7.2),
3. a single B+-tree on the *replicated* values (one traversal).

Run:  python examples/path_indexing.py
"""

import random

from repro import Database, TypeDefinition, char_field, int_field, ref_field
from repro.index.path_index import GemstonePathIndex


def main() -> None:
    rng = random.Random(5)
    db = Database(buffer_frames=2048)
    db.define_type(TypeDefinition("ORG", [char_field("name", 20), int_field("budget")]))
    db.define_type(
        TypeDefinition("DEPT", [char_field("name", 20), ref_field("org", "ORG")])
    )
    db.define_type(
        TypeDefinition(
            "EMP", [char_field("name", 20), int_field("salary"), ref_field("dept", "DEPT")]
        )
    )
    db.create_set("Org", "ORG")
    db.create_set("Dept", "DEPT")
    db.create_set("Emp1", "EMP")

    orgs = [db.insert("Org", {"name": f"org{i:04d}", "budget": i}) for i in range(400)]
    depts = [
        db.insert("Dept", {"name": f"d{i}", "org": orgs[i % 400]}) for i in range(800)
    ]
    for i in range(3000):
        db.insert(
            "Emp1",
            {"name": f"e{i:04d}", "salary": i, "dept": rng.choice(depts)},
        )

    probes = [f"org{i:04d}" for i in (7, 99, 222, 350)]

    # 1. scan + functional joins
    db.replicate("Emp1.dept.org.name")  # needed for the filter; build first
    db.cold_cache()
    scan_io = 0
    for probe in probes:
        db.cold_cache()
        res = db.execute(f"retrieve (Emp1.name) where Emp1.dept.org.name = '{probe}'")
        scan_io += res.io.total_io
    print(f"scan + replicated filter : {scan_io:5d} I/Os for {len(probes)} lookups")

    # 2. Gemstone multi-component path index
    gem = GemstonePathIndex(db, "Emp1.dept.org.name")
    db.cold_cache()
    gem_cost = db.measure(lambda: [gem.lookup(p) for p in probes])
    print(f"Gemstone path index      : {gem_cost.total_io:5d} I/Os "
          f"({gem.component_count} B+-trees per lookup)")

    # 3. index on replicated data
    info = db.build_index("Emp1.dept.org.name")
    db.cold_cache()
    rep_cost = db.measure(lambda: [info.index.lookup(p) for p in probes])
    print(f"index on replicated data : {rep_cost.total_io:5d} I/Os (one B+-tree)")

    for probe in probes:
        assert sorted(info.index.lookup(probe)) == gem.lookup(probe)
    print("\nall three answer sets agree; the replicated-data index wins, as §7.2 argues")


if __name__ == "__main__":
    main()
