"""A fuller tour: multi-path replication on a three-level company schema.

Demonstrates, on one database:

* the Figure 5 configuration -- several paths sharing links,
* 2-level paths (``Emp1.dept.org.name``) and path collapsing by
  replicating a reference attribute (``Emp1.dept.org``),
* full object replication (``Emp1.dept.all``),
* separate replication with shared replicas and reference counts,
* propagation through reference-attribute updates (a department moving to
  a different organization),
* the consistency checker.

Run:  python examples/company_database.py
"""

import random

from repro import Database, Strategy, TypeDefinition, char_field, int_field, ref_field


def build_schema(db: Database) -> None:
    db.define_type(TypeDefinition("ORG", [char_field("name", 20), int_field("budget")]))
    db.define_type(
        TypeDefinition(
            "DEPT", [char_field("name", 20), int_field("budget"), ref_field("org", "ORG")]
        )
    )
    db.define_type(
        TypeDefinition(
            "EMP",
            [
                char_field("name", 20),
                int_field("age"),
                int_field("salary"),
                ref_field("dept", "DEPT"),
            ],
        )
    )
    for set_name, type_name in [
        ("Org", "ORG"), ("Dept", "DEPT"), ("Emp1", "EMP"), ("Emp2", "EMP"),
    ]:
        db.create_set(set_name, type_name)


def main() -> None:
    rng = random.Random(2)
    db = Database(buffer_frames=1024)
    build_schema(db)

    orgs = [db.insert("Org", {"name": f"org{i}", "budget": 1000 * i}) for i in range(8)]
    depts = [
        db.insert("Dept", {"name": f"dept{i:02d}", "budget": i, "org": orgs[i % 8]})
        for i in range(40)
    ]
    emp1 = [
        db.insert(
            "Emp1",
            {"name": f"e{i:03d}", "age": 20 + i % 40, "salary": 1000 * i,
             "dept": rng.choice(depts)},
        )
        for i in range(300)
    ]
    for i in range(50):
        db.insert(
            "Emp2",
            {"name": f"z{i:03d}", "age": 30, "salary": 99, "dept": rng.choice(depts)},
        )

    print("== the Figure 5 path configuration ==")
    p_budget = db.replicate("Emp1.dept.budget")
    p_name = db.replicate("Emp1.dept.name")
    p_orgname = db.replicate("Emp1.dept.org.name")
    p_emp2 = db.replicate("Emp2.dept.org")  # collapses Emp2's 2-level path
    for p in (p_budget, p_name, p_orgname, p_emp2):
        print(f"  replicate {p.text:28s} link sequence = {p.link_sequence}")
    print("  (shared prefix Emp1.dept -> shared first link, as in the paper)")

    print("\n== queries exploit whichever path applies ==")
    for q in [
        "retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary >= 295000",
        "retrieve (Emp1.name, Emp1.dept.org.name) where Emp1.salary >= 295000",
        "retrieve (Emp2.name, Emp2.dept.org.budget) where Emp2.age = 30",
    ]:
        res = db.execute(q)
        print(f"  {len(res):3d} rows  plan: {res.plan}")

    print("\n== a department changes organization ==")
    moved = depts[0]
    before = db.execute(
        "retrieve (Emp1.name) where Emp1.dept.org.name = 'org0'"
    )
    db.update("Dept", moved, {"org": orgs[7]})
    after = db.execute(
        "retrieve (Emp1.name) where Emp1.dept.org.name = 'org0'"
    )
    print(f"  employees under org0 via replicated data: {len(before)} -> {len(after)}")
    db.verify()
    print("  verify(): inverted-path surgery left everything consistent")

    print("\n== separate replication: shared replicas with refcounts ==")
    p_sep = db.replicate("Emp1.dept.org.budget", strategy=Strategy.SEPARATE)
    db.cold_cache()
    cost_sep = db.measure(
        lambda: (db.update("Org", orgs[3], {"budget": 123456}),
                 db.storage.pool.flush_all())
    )
    print(f"  updating a replicated org budget touched {cost_sep.total_io} pages "
          f"(one shared replica, not one write per employee)")
    replica_count = db.replication.replica_sets[p_sep.path_id].count()
    print(f"  S' holds {replica_count} replica objects for {len(emp1)} employees")

    print("\n== full object replication ==")
    db2 = Database()
    build_schema(db2)
    org = db2.insert("Org", {"name": "solo", "budget": 1})
    dept = db2.insert("Dept", {"name": "lab", "budget": 7, "org": org})
    db2.insert("Emp1", {"name": "ada", "age": 36, "salary": 1, "dept": dept})
    db2.replicate("Emp1.dept.all")
    res = db2.execute("retrieve (Emp1.dept.name, Emp1.dept.budget) where Emp1.name = 'ada'")
    print(f"  any DEPT field now serves without a join: {res.rows[0]}  ({res.plan})")
    db2.verify()

    db.verify()
    print("\nall invariants verified on both databases")


if __name__ == "__main__":
    main()
