"""The replication advisor: the paper's "knowledgeable DBA", mechanised.

Section 3.1 assumes a DBA who knows to replicate only frequently-read,
rarely-updated paths.  This example feeds workload descriptions to the
cost-model-backed advisor and shows the recommended DDL, then applies one
recommendation to a live database and confirms the predicted direction.

Run:  python examples/replication_advisor.py
"""

from repro.costmodel.advisor import PathWorkload, recommend, sweep_recommendations

SCENARIOS = [
    ("dashboard label lookup", PathWorkload(update_probability=0.02, f=1, f_r=0.002)),
    ("hot path, heavy sharing", PathWorkload(update_probability=0.40, f=20, f_r=0.002)),
    ("write-mostly audit field", PathWorkload(update_probability=0.95, f=1, f_r=0.001)),
    ("clustered reporting mart", PathWorkload(update_probability=0.10, f=10,
                                              f_r=0.005, clustered=True)),
]


def main() -> None:
    print("== advisor verdicts ==")
    for label, workload in SCENARIOS:
        rec = recommend(workload)
        ddl = rec.ddl("Emp1.dept.name") or "(leave unreplicated)"
        print(f"\n{label}:")
        print(f"  verdict : {rec.strategy.value}  (saves {rec.saving_percent:.0f}%)")
        print(f"  DDL     : {ddl}")
        print(f"  why     : {rec.reasoning}")

    print("\n== how the verdict moves with the update probability (f = 20) ==")
    for p, rec in sweep_recommendations(PathWorkload(update_probability=0, f=20,
                                                     f_r=0.002)):
        print(f"  P_update={p:.2f}: {rec.strategy.value:8s} "
              f"(saves {rec.saving_percent:5.1f}%)")

    print("\n== applying a recommendation to a live database ==")
    from repro.workloads import WorkloadConfig, compare_strategies

    config = WorkloadConfig(n_s=300, f=5, f_r=0.01, f_s=0.01)
    costs = compare_strategies(config, trials=3)
    rec = recommend(PathWorkload(update_probability=0.1, f=5, f_r=0.01, f_s=0.01,
                                 n_s=300))
    chosen = {"inplace": "inplace", "separate": "separate",
              "none": "none"}[rec.strategy.value]
    measured = {s: c.total(0.1) for s, c in costs.items()}
    print(f"  advisor picked {rec.strategy.value!r}; measured C_total(0.1): "
          + ", ".join(f"{s}={v:.1f}" for s, v in measured.items()))
    best_measured = min(measured, key=measured.get)
    print(f"  cheapest measured strategy: {best_measured!r}")


if __name__ == "__main__":
    main()
