"""Empirical strategy shoot-out on the real storage engine.

Runs the paper's read / update query mix (Section 6) against the three
strategies at two sharing levels and prints measured I/O costs plus the
percentage-difference series -- the empirical analogue of Figure 11.

Run:  python examples/workload_shootout.py
"""

from repro.workloads import WorkloadConfig, compare_strategies, percent_differences

P_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)


def main() -> None:
    for f in (1, 5):
        config = WorkloadConfig(n_s=400, f=f, f_r=0.01, f_s=0.01)
        print(f"\n=== unclustered, |S| = {config.n_s}, f = {f}, "
              f"|R| = {config.n_r} ===")
        costs = compare_strategies(config, trials=4)
        print(f"{'strategy':10s} {'C_read':>8s} {'C_update':>9s}")
        for strategy, measured in costs.items():
            print(f"{strategy:10s} {measured.read:8.1f} {measured.update:9.1f}")
        print(f"\n{'P_update':>8s} {'in-place':>10s} {'separate':>10s}   (% vs none)")
        pct = percent_differences(costs, P_GRID)
        for i, p in enumerate(P_GRID):
            print(f"{p:8.2f} {pct['inplace'][i]:+9.1f}% {pct['separate'][i]:+9.1f}%")
    print(
        "\nShapes match the analytical model: in-place dominates read-heavy "
        "mixes,\nbreaks down fastest as updates grow; separate helps when "
        "f > 1 and decays slowly."
    )


if __name__ == "__main__":
    main()
