"""Quickstart: the paper's employee database and its motivating query.

Builds the Figure 1 schema from DDL text, loads a small company, and runs
the Section 3.1 query twice -- without and with ``replicate
Emp1.dept.name`` -- printing the plans and the I/O each one costs.

Run:  python examples/quickstart.py
"""

import random

from repro import Database
from repro.schema.parser import execute_ddl, run_script

SCHEMA = """
define type ORG (
    name:   char[20],
    budget: int
)

define type DEPT (
    name:   char[20],
    budget: int,
    org:    ref ORG
)

define type EMP (
    name:   char[20],
    age:    int,
    salary: int,
    dept:   ref DEPT
)

create Org:  {own ref ORG}
create Dept: {own ref DEPT}
create Emp1: {own ref EMP}
create Emp2: {own ref EMP}
"""

QUERY = (
    "retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) "
    "where Emp1.salary > 100000"
)


def load_company(db: Database, rng: random.Random) -> None:
    # One department per employee on average: the functional join scatters
    # across many DEPT pages, as in the paper's relatively unclustered case.
    orgs = [db.insert("Org", {"name": f"org{i}", "budget": i}) for i in range(5)]
    depts = [
        db.insert(
            "Dept",
            {"name": f"dept{i:04d}", "budget": i * 10, "org": rng.choice(orgs)},
        )
        for i in range(3000)
    ]
    for i in range(3000):
        db.insert(
            "Emp1",
            {
                "name": f"emp{i:04d}",
                "age": 20 + i % 45,
                "salary": rng.randrange(30_000, 200_000),
                "dept": rng.choice(depts),
            },
        )


def main() -> None:
    db = Database(buffer_frames=512)
    run_script(db, SCHEMA)
    load_company(db, random.Random(1))
    db.build_index("Emp1.salary")

    print("== the paper's query, before replication ==")
    db.cold_cache()
    before = db.execute(QUERY)
    print(f"plan: {before.plan}")
    print(f"rows: {len(before)}   I/O: {before.io.total_io} "
          f"({before.io.physical_reads} reads, {before.io.physical_writes} writes)")

    print("\n== replicate Emp1.dept.name ==")
    execute_ddl(db, "replicate Emp1.dept.name")

    db.cold_cache()
    after = db.execute(QUERY)
    print(f"plan: {after.plan}")
    print(f"rows: {len(after)}   I/O: {after.io.total_io} "
          f"({after.io.physical_reads} reads, {after.io.physical_writes} writes)")
    assert sorted(after.rows) == sorted(before.rows)
    saved = 100 * (before.io.total_io - after.io.total_io) / before.io.total_io
    print(f"\nfunctional join eliminated; I/O cut by {saved:.0f}%")

    print("\n== updates propagate through the inverted path ==")
    target = db.execute(
        "retrieve (Emp1.dept.name) where Emp1.name = 'emp0000'"
    ).rows[0][0]
    res = db.execute(f"replace (Dept.name = 'renamed') where Dept.name = '{target}'")
    print(f"updated {len(res)} department(s); I/O {res.io.total_io}")
    check = db.execute(
        "retrieve (Emp1.name) where Emp1.dept.name = 'renamed'"
    )
    print(f"{len(check)} employees now see the new name through replicated data")
    db.verify()
    print("verify(): all replication invariants hold")


if __name__ == "__main__":
    main()
