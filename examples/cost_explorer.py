"""Explore the analytical cost model of Section 6.

Prints the selected-values tables (Figures 12 and 14) side by side with
the paper's published numbers, one ASCII panel of Figure 11, crossover
points per sharing level, and the status of the paper's prose claims.

Run:  python examples/cost_explorer.py
"""

from repro.costmodel import (
    PAPER_FIGURE12,
    PAPER_FIGURE14,
    CostParameters,
    ModelStrategy,
    Setting,
    check_all_claims,
    figure12,
    figure14,
    render_selected_values,
    sweep,
)
from repro.costmodel.figures import render_ascii_plot


def main() -> None:
    print(render_selected_values(figure12(), Setting.UNCLUSTERED, PAPER_FIGURE12))
    print()
    print(render_selected_values(figure14(), Setting.CLUSTERED, PAPER_FIGURE14))

    print("\nFigure 11, f = 10 panel (percent difference in C_total):")
    series = {}
    for strategy in (ModelStrategy.IN_PLACE, ModelStrategy.SEPARATE):
        for f_r in (0.001, 0.005):
            params = CostParameters(f=10, f_r=f_r)
            series[f"{strategy.value} fr={f_r}"] = sweep(
                params, strategy, Setting.UNCLUSTERED, points=31
            )
    print(render_ascii_plot(series))

    print("\nCrossover P_update (strategy stops beating no replication):")
    for f in (1, 10, 20, 50):
        row = [f"  f={f:<3d}"]
        for strategy in (ModelStrategy.IN_PLACE, ModelStrategy.SEPARATE):
            params = CostParameters(f=f, f_r=0.002)
            cross = sweep(params, strategy, Setting.UNCLUSTERED, points=201).crossover()
            row.append(f"{strategy.value}: {cross if cross is not None else 'never'}")
        print("  ".join(row))

    print("\nPaper claims:")
    for result in check_all_claims():
        status = "HOLDS" if result.holds else "FAILS"
        print(f"  [{status}] claim {result.claim_id}: {result.description}")
        print(f"          {result.detail}")


if __name__ == "__main__":
    main()
